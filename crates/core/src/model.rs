//! The CSR+ model: precomputation (Algorithm 1 lines 1–6) and online
//! multi-source queries (line 7).

use crate::config::CsrPlusConfig;
use crate::error::CoSimRankError;
use crate::factor::{DenseMatrixF32, Factor, FactorView};
use crate::precision::Precision;
use csrplus_graph::partition::Reordering;
use csrplus_graph::TransitionMatrix;
use csrplus_linalg::randomized::randomized_svd;
use csrplus_linalg::DenseMatrix;
use csrplus_memtrack::MemoryBudget;
use std::sync::Arc;
use std::time::Duration;

/// Work floor per parallel chunk for the cheap per-node online sweeps
/// (bound maps, norm tables, column gathers).  Chunk boundaries depend
/// only on `n` and the per-node work, never on the thread count, so the
/// online layer stays bitwise reproducible at any parallelism.
const MIN_ONLINE_WORK: usize = 1 << 16;

/// Wall-clock breakdown of one precomputation (Algorithm 1 lines 1–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrecomputeStats {
    /// Line 2: the truncated SVD — the dominant term, `O(mr)`-ish.
    pub svd: Duration,
    /// Lines 3–5: `H₀` and the repeated-squaring fixed point, `O(nr²+r³)`.
    pub subspace: Duration,
    /// Line 6: `Z = U(ΣPΣ)`, `O(nr²)`.
    pub memoise: Duration,
    /// Squaring iterations actually run.
    pub squaring_iterations: usize,
}

impl PrecomputeStats {
    /// Total preprocessing wall-clock.
    pub fn total(&self) -> Duration {
        self.svd + self.subspace + self.memoise
    }
}

/// The node permutation a reordered model carries: the factors' rows
/// live in *internal* (reordered) id space, and every public query entry
/// point translates between original node ids and internal rows through
/// this map, so callers never observe the reordering.
///
/// Persisted as the `perm`/`perm.meta` sections of CSRP v2 artifacts.
#[derive(Debug, Clone)]
pub struct ModelPermutation {
    /// Scatter map `order[internal] = original`.
    order: Vec<u32>,
    /// Gather map `rank[original] = internal`.
    rank: Vec<u32>,
    /// The reordering strategy that produced the map.
    kind: Reordering,
}

impl ModelPermutation {
    /// The scatter map `order[internal] = original`.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The reordering strategy that produced the map.
    pub fn kind(&self) -> Reordering {
        self.kind
    }
}

/// The memoised state of Algorithm 1 after precomputation.
///
/// Holds only `O(rn)` data: the left singular block `U` (`n×r`) and
/// `Z = U(ΣPΣ)` (`n×r`), plus the `r×r` diagnostics (`P`, `H₀`, `Σ`).
///
/// A model precomputed over a reordered graph additionally carries a
/// [`ModelPermutation`]; see [`CsrPlusModel::with_permutation`].
#[derive(Debug, Clone)]
pub struct CsrPlusModel {
    config: CsrPlusConfig,
    n: usize,
    /// Left singular vectors of `Q` (`n × r`) — owned or mapped.
    u: Factor,
    /// `Z = U·(Σ P Σ)` (`n × r`), memoised for the query phase —
    /// owned or mapped.
    z: Factor,
    /// Singular values of `Q` (length `r`).
    sigma: Vec<f64>,
    /// Fixed point of `P = cHPHᵀ + I_r` (diagnostic / ablation access).
    p: DenseMatrix,
    /// `H₀ = VᵀUΣ` (diagnostic / ablation access).
    h0: DenseMatrix,
    /// Row norms of `Z`, sorted descending (node id attached) — powers
    /// the Cauchy–Schwarz pruning of [`CsrPlusModel::similarity_join`].
    z_norms_desc: Vec<(f64, u32)>,
    /// Per-node split of `Z`'s rows for the tightened retrieval bound:
    /// `(Z[x,0], ‖Z[x,1..]‖)`.  The first (dominant-σ) coordinate enters
    /// the bound as an exact signed term; Cauchy–Schwarz only covers the
    /// remainder — see [`CsrPlusModel::top_k_pruned`].
    z_split: Vec<(f64, f64)>,
    /// `Some` when the factor rows are a reordering of the original node
    /// ids; `None` is the identity fast path (byte-for-byte the
    /// historical behaviour).
    perm: Option<Arc<ModelPermutation>>,
}

impl CsrPlusModel {
    /// Runs the precomputation phase (Algorithm 1 lines 1–6) over the
    /// column-normalised transition matrix.
    ///
    /// ```
    /// use csrplus_core::{CsrPlusConfig, CsrPlusModel};
    /// use csrplus_graph::{generators::figure1_graph, TransitionMatrix};
    ///
    /// let t = TransitionMatrix::from_graph(&figure1_graph());
    /// let model = CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3))?;
    /// let s = model.multi_source(&[1, 3])?; // queries {b, d}
    /// assert_eq!(s.shape(), (6, 2));
    /// # Ok::<(), csrplus_core::CoSimRankError>(())
    /// ```
    ///
    /// # Errors
    /// Propagates configuration and SVD failures.
    pub fn precompute(
        t: &TransitionMatrix,
        config: &CsrPlusConfig,
    ) -> Result<Self, CoSimRankError> {
        Ok(Self::precompute_with_stats(t, config)?.0)
    }

    /// [`CsrPlusModel::precompute`] with a wall-clock breakdown per phase
    /// (the per-line costs of Theorem 3.7's table, measured).
    pub fn precompute_with_stats(
        t: &TransitionMatrix,
        config: &CsrPlusConfig,
    ) -> Result<(Self, PrecomputeStats), CoSimRankError> {
        let n = t.n();
        config.validate(n)?;

        // Line 2: decompose Q at rank r, then run lines 3–6.
        let t0 = std::time::Instant::now();
        let svd = match config.backend {
            crate::config::SvdBackend::Randomized => randomized_svd(t, &config.svd_config())?,
            crate::config::SvdBackend::Lanczos => {
                csrplus_linalg::lanczos::lanczos_svd(t, &config.lanczos_config())?
            }
        };
        let svd_time = t0.elapsed();
        let (model, mut stats) = Self::from_svd_with_stats(config, &svd)?;
        stats.svd = svd_time;
        Ok((model, stats))
    }

    /// Builds the memoised state (Algorithm 1 lines 3–6) from an existing
    /// truncated SVD of `Q` in the *standard* convention `Q ≈ UΣVᵀ`.
    ///
    /// NB: the paper's Eqs. (6a)/(6b) and its worked example are
    /// consistent only with the convention `Q = VΣUᵀ` (its "U" is the
    /// *right* singular block of `Q`; compare Example 3.6, where the
    /// printed `Vᵀ` has `e_d` as its first row — the left singular vector
    /// of the three identical columns of `Q`).  The factors of the
    /// standard SVD are therefore swapped here.
    ///
    /// This entry point also powers [`crate::dynamic`], which maintains
    /// the SVD incrementally under edge updates.
    pub fn from_svd(
        config: &CsrPlusConfig,
        svd: &csrplus_linalg::TruncatedSvd,
    ) -> Result<Self, CoSimRankError> {
        Ok(Self::from_svd_with_stats(config, svd)?.0)
    }

    /// [`CsrPlusModel::from_svd`] with per-phase timing (SVD time is left
    /// zero — the caller owns that phase).
    pub fn from_svd_with_stats(
        config: &CsrPlusConfig,
        svd: &csrplus_linalg::TruncatedSvd,
    ) -> Result<(Self, PrecomputeStats), CoSimRankError> {
        let n = svd.u.rows();
        let u = svd.v.clone();
        let v = svd.u.clone();
        let sigma = svd.sigma.clone();

        // Line 3: H₀ = Vᵀ U Σ = (VᵀU)·Σ — scaling the r×r product by Σ
        // on the right instead of materialising the n×r `UΣ` intermediate.
        let t1 = std::time::Instant::now();
        let mut h0 = v.matmul_transpose_a(&u)?;
        h0.scale_columns_mut(&sigma);

        // Lines 4–5: repeated squaring for P = c·H P Hᵀ + I_r.
        let iterations = config.squaring_iterations();
        let p = solve_subspace_fixed_point(&h0, config.damping, iterations)?;
        let subspace = t1.elapsed();

        // Line 6: Z = U (Σ P Σ), the diagonal scalings applied in place on
        // a single r×r copy.
        let t2 = std::time::Instant::now();
        let mut sps = p.clone();
        sps.scale_rows_mut(&sigma);
        sps.scale_columns_mut(&sigma);
        let z = u.matmul(&sps)?;
        // Storage demotion happens here, *after* the full-precision
        // computation and *before* the derived pruning tables — the
        // tables must describe the factors as stored, or the retrieval
        // bounds would not be sound against the widened f32 values.
        let (u, z) = match crate::precision::storage_precision() {
            Precision::F64 => (Factor::from(u), Factor::from(z)),
            Precision::F32 => (
                Factor::from(DenseMatrixF32::from_f64(&u)),
                Factor::from(DenseMatrixF32::from_f64(&z)),
            ),
        };
        let z_norms_desc = sorted_row_norms(&z);
        let z_split = split_row_bounds(&z);
        let memoise = t2.elapsed();

        let stats = PrecomputeStats {
            svd: Duration::ZERO,
            subspace,
            memoise,
            squaring_iterations: iterations,
        };
        Ok((
            CsrPlusModel {
                config: *config,
                n,
                u,
                z,
                sigma,
                p,
                h0,
                z_norms_desc,
                z_split,
                perm: None,
            },
            stats,
        ))
    }

    /// Reassembles a model from previously memoised parts (used by
    /// [`crate::persist`] when loading from disk).
    ///
    /// # Errors
    /// [`CoSimRankError::InvalidConfig`] when the shapes are inconsistent.
    pub fn from_parts(
        config: CsrPlusConfig,
        n: usize,
        u: DenseMatrix,
        z: DenseMatrix,
        sigma: Vec<f64>,
        p: DenseMatrix,
        h0: DenseMatrix,
    ) -> Result<Self, CoSimRankError> {
        Self::from_factors(config, n, Factor::from(u), Factor::from(z), sigma, p, h0)
    }

    /// [`CsrPlusModel::from_parts`] over [`Factor`] storage (owned or
    /// mapped), recomputing the derived pruning tables — which touches
    /// every row of `Z`, so artifact loads prefer
    /// [`CsrPlusModel::from_factors_with_tables`].
    ///
    /// # Errors
    /// [`CoSimRankError::InvalidConfig`] when the shapes are inconsistent.
    pub fn from_factors(
        config: CsrPlusConfig,
        n: usize,
        u: Factor,
        z: Factor,
        sigma: Vec<f64>,
        p: DenseMatrix,
        h0: DenseMatrix,
    ) -> Result<Self, CoSimRankError> {
        let z_norms_desc = sorted_row_norms(&z);
        let z_split = split_row_bounds(&z);
        Self::from_factors_with_tables(config, n, u, z, sigma, p, h0, z_norms_desc, z_split)
    }

    /// Reassembles a model from memoised factors *and* the derived
    /// pruning tables (`Z` row norms, split bounds).  This is the
    /// instant-boot entry point: with the tables supplied from the
    /// artifact, nothing here reads a single row of `U` or `Z`, so a
    /// mapped model materialises no factor pages until the first query.
    ///
    /// # Errors
    /// [`CoSimRankError::InvalidConfig`] when shapes or table lengths are
    /// inconsistent.
    #[allow(clippy::too_many_arguments)] // deliberate: the full memoised state
    pub fn from_factors_with_tables(
        config: CsrPlusConfig,
        n: usize,
        u: Factor,
        z: Factor,
        sigma: Vec<f64>,
        p: DenseMatrix,
        h0: DenseMatrix,
        z_norms_desc: Vec<(f64, u32)>,
        z_split: Vec<(f64, f64)>,
    ) -> Result<Self, CoSimRankError> {
        let r = sigma.len();
        let bad = |what: &str| CoSimRankError::InvalidConfig {
            message: format!("from_parts: inconsistent {what}"),
        };
        if u.shape() != (n, r) || z.shape() != (n, r) {
            return Err(bad("U/Z shapes"));
        }
        if p.shape() != (r, r) || h0.shape() != (r, r) {
            return Err(bad("P/H₀ shapes"));
        }
        if z_norms_desc.len() != n || z_split.len() != n {
            return Err(bad("derived table lengths"));
        }
        config.validate(n.max(1))?;
        Ok(CsrPlusModel { config, n, u, z, sigma, p, h0, z_norms_desc, z_split, perm: None })
    }

    /// Attaches the node permutation under which this model's factors
    /// were precomputed: `order[internal] = original`.  Queries keep
    /// using original node ids and results come back in original ids —
    /// the translation happens inside the model.  An identity `order`
    /// leaves the model permutation-free (the fast path).
    ///
    /// # Errors
    /// [`CoSimRankError::InvalidConfig`] when `order` is not a
    /// permutation of `0..n`.
    pub fn with_permutation(
        mut self,
        order: Vec<u32>,
        kind: Reordering,
    ) -> Result<Self, CoSimRankError> {
        if order.len() != self.n {
            return Err(CoSimRankError::InvalidConfig {
                message: format!(
                    "permutation length {} does not match n = {}",
                    order.len(),
                    self.n
                ),
            });
        }
        let mut rank = vec![u32::MAX; self.n];
        for (new, &old) in order.iter().enumerate() {
            if old as usize >= self.n || rank[old as usize] != u32::MAX {
                return Err(CoSimRankError::InvalidConfig {
                    message: format!("permutation is not a bijection on 0..{}", self.n),
                });
            }
            rank[old as usize] = new as u32;
        }
        let identity = order.iter().enumerate().all(|(new, &old)| new as u32 == old);
        self.perm =
            if identity { None } else { Some(Arc::new(ModelPermutation { order, rank, kind })) };
        Ok(self)
    }

    /// The attached node permutation, if the model is reordered.
    pub fn permutation(&self) -> Option<&ModelPermutation> {
        self.perm.as_deref()
    }

    /// Maps an original node id to its internal factor row.
    #[inline]
    pub fn internal_row(&self, node: usize) -> usize {
        match &self.perm {
            Some(p) => p.rank[node] as usize,
            None => node,
        }
    }

    /// Maps an internal factor row back to its original node id.
    #[inline]
    pub fn original_id(&self, row: usize) -> usize {
        match &self.perm {
            Some(p) => p.order[row] as usize,
            None => row,
        }
    }

    /// The derived pruning tables `(Z row norms desc, Z split bounds)` —
    /// persisted alongside the factors so loads skip their `O(n·r)`
    /// recomputation.
    #[allow(clippy::type_complexity)]
    pub fn derived_tables(&self) -> (&[(f64, u32)], &[(f64, f64)]) {
        (&self.z_norms_desc, &self.z_split)
    }

    /// True when any factor borrows mapped (page-cache) storage.
    pub fn is_mapped(&self) -> bool {
        self.u.is_mapped() || self.z.is_mapped()
    }

    /// Storage precision of the dense factors (`U` and `Z` always agree).
    pub fn precision(&self) -> Precision {
        self.u.precision()
    }

    /// Graph size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configuration used to build this model.
    pub fn config(&self) -> &CsrPlusConfig {
        &self.config
    }

    /// Effective rank (may be below the requested rank if the spectrum
    /// truncated earlier).
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Singular values of the truncated SVD.
    pub fn sigma(&self) -> &[f64] {
        &self.sigma
    }

    /// The `n×r` left singular block `U` (owned or mapped).
    pub fn u(&self) -> &Factor {
        &self.u
    }

    /// The memoised `n×r` matrix `Z = U(ΣPΣ)` (owned or mapped).
    pub fn z(&self) -> &Factor {
        &self.z
    }

    /// The `r×r` subspace fixed point `P` (diagnostics/ablations).
    pub fn p(&self) -> &DenseMatrix {
        &self.p
    }

    /// `H₀ = VᵀUΣ` (diagnostics/ablations).
    pub fn h0(&self) -> &DenseMatrix {
        &self.h0
    }

    /// Online multi-source query (Algorithm 1 line 7):
    /// `[S]_{*,Q} = [Iₙ]_{*,Q} + c·Z·[U]_{Q,*}ᵀ`.
    ///
    /// Returns an `n × |Q|` matrix whose column `j` is the similarity of
    /// every node to `queries[j]`.
    ///
    /// # Errors
    /// [`CoSimRankError::QueryOutOfBounds`] on an invalid node id.
    pub fn multi_source(&self, queries: &[usize]) -> Result<DenseMatrix, CoSimRankError> {
        let mut s = DenseMatrix::zeros(0, 0);
        self.multi_source_into(queries, &mut s)?;
        Ok(s)
    }

    /// [`CsrPlusModel::multi_source`] writing into a caller-provided
    /// matrix, which is resized to `n × |Q|` reusing its existing
    /// allocation when capacity suffices — the steady-state query path
    /// allocates nothing for the result block.
    pub fn multi_source_into(
        &self,
        queries: &[usize],
        out: &mut DenseMatrix,
    ) -> Result<(), CoSimRankError> {
        self.multi_source_rank_into(queries, self.rank(), out)
    }

    /// [`CsrPlusModel::multi_source_into`] truncated to the leading
    /// `rank` factor columns: `[S]_{*,Q} ≈ [Iₙ]_{*,Q} +
    /// c·[Z]_{*,..t}·[U]_{Q,..t}ᵀ` with `t = rank.clamp(1, r)`.
    ///
    /// Dropping trailing coordinates drops the smallest-σ directions of
    /// the subspace — the same tolerance the random-projection CoSimRank
    /// line exploits — so a pressured server can serve a cheaper
    /// truncated answer instead of shedding.  At `rank ≥ r` this routes
    /// through exactly the full-rank views and is **bitwise identical**
    /// to [`CsrPlusModel::multi_source_into`].
    ///
    /// # Errors
    /// [`CoSimRankError::QueryOutOfBounds`] on an invalid node id.
    pub fn multi_source_rank_into(
        &self,
        queries: &[usize],
        rank: usize,
        out: &mut DenseMatrix,
    ) -> Result<(), CoSimRankError> {
        let internal = self.internal_queries(queries)?;
        match &self.perm {
            None => self.multi_source_internal_into(&internal, 0, self.n, rank, out),
            Some(p) => {
                // Evaluate in internal row order, then scatter each row
                // to its original id — a pure reordering of bitwise
                // untouched values.
                let mut block = DenseMatrix::zeros(0, 0);
                self.multi_source_internal_into(&internal, 0, self.n, rank, &mut block)?;
                let w = queries.len();
                out.resize_for_overwrite(self.n, w);
                let dst = out.as_mut_slice();
                for (i, &orig) in p.order.iter().enumerate() {
                    dst[orig as usize * w..(orig as usize + 1) * w].copy_from_slice(block.row(i));
                }
                Ok(())
            }
        }
    }

    /// Bounds-checks `queries` (original ids) and maps them to internal
    /// factor rows.  For permutation-free models the mapping is the
    /// identity and the input slice is borrowed back allocation-free —
    /// the steady-state query path must not pay for a feature it does
    /// not use.
    fn internal_queries<'q>(
        &self,
        queries: &'q [usize],
    ) -> Result<std::borrow::Cow<'q, [usize]>, CoSimRankError> {
        for &q in queries {
            if q >= self.n {
                return Err(CoSimRankError::QueryOutOfBounds { node: q, n: self.n });
            }
        }
        Ok(match &self.perm {
            None => std::borrow::Cow::Borrowed(queries),
            Some(_) => queries.iter().map(|&q| self.internal_row(q)).collect(),
        })
    }

    /// The shared evaluation core: rows `lo..hi` (internal order) of
    /// `[S]_{*,Q} = [Iₙ]_{*,Q} + c·Z·[U]_{Q,*}ᵀ` for already-translated
    /// internal query rows, written to a `(hi-lo) × |Q|` block, using
    /// only the leading `rank.clamp(1, r)` factor columns.
    ///
    /// Every output element is an independent row·row dot product in the
    /// dispatched kernel, so a range evaluation is bitwise identical to
    /// the same rows of the full evaluation — the property that lets a
    /// shard coordinator reassemble exactly the single-process answer.
    /// Truncation is a column sub-block of the very same views (`t = r`
    /// is the identity block), so the full-rank path is untouched.
    fn multi_source_internal_into(
        &self,
        internal: &[usize],
        lo: usize,
        hi: usize,
        rank: usize,
        out: &mut DenseMatrix,
    ) -> Result<(), CoSimRankError> {
        debug_assert!(lo <= hi && hi <= self.n);
        let uq = self.u.select_rows(internal); // |Q| × r, same precision as U
                                               // The kernels below overwrite every element of the result block,
                                               // so the warm scratch skips the O(n·|Q|) zeroing memset that made
                                               // the view path trail the owned path on wide batches.
        out.resize_for_overwrite(hi - lo, internal.len());
        // S = Z·[U]_Qᵀ expressed by view transposition — the same pooled
        // kernel (and bits) as the owned transpose-b product.  f32-stored
        // factors take the mixed kernel (f64 accumulation).
        let r = self.rank();
        let t = rank.clamp(1, r.max(1)).min(r);
        let q = internal.len();
        match (self.z.factor_view(), uq.factor_view()) {
            (FactorView::F64(z), FactorView::F64(u)) => csrplus_linalg::matmul_into(
                z.block(lo, hi, 0, t),
                u.block(0, q, 0, t).t(),
                out.view_mut(),
                csrplus_par::threads(),
            )?,
            (FactorView::F32(z), FactorView::F32(u)) => csrplus_linalg::matmul_into_mixed(
                z.block(lo, hi, 0, t),
                u.block(0, q, 0, t).t(),
                out.view_mut(),
                csrplus_par::threads(),
            )?,
            _ => unreachable!("U and Z always share one storage precision"),
        }
        out.scale_in_place(self.config.damping);
        for (j, &q) in internal.iter().enumerate() {
            if q >= lo && q < hi {
                let v = out.get(q - lo, j) + 1.0;
                out.set(q - lo, j, v);
            }
        }
        Ok(())
    }

    /// Rows `lo..hi` — in *internal* (reordered) row order — of the
    /// multi-source block, the per-shard unit of evaluation.  Queries are
    /// original node ids as everywhere else; only the output rows are
    /// internal, because a contiguous internal range is what a shard
    /// owns.  Concatenating the blocks of a partition of `0..n` and
    /// scattering rows through the permutation reproduces
    /// [`CsrPlusModel::multi_source_into`] bitwise.
    ///
    /// # Errors
    /// [`CoSimRankError::QueryOutOfBounds`] on an invalid node id,
    /// [`CoSimRankError::InvalidConfig`] on an invalid range.
    pub fn multi_source_range_into(
        &self,
        queries: &[usize],
        lo: usize,
        hi: usize,
        out: &mut DenseMatrix,
    ) -> Result<(), CoSimRankError> {
        if lo > hi || hi > self.n {
            return Err(CoSimRankError::InvalidConfig {
                message: format!("row range {lo}..{hi} invalid for n = {}", self.n),
            });
        }
        let internal = self.internal_queries(queries)?;
        self.multi_source_internal_into(&internal, lo, hi, self.rank(), out)
    }

    /// Multi-source query evaluated in bounded-memory chunks: the query
    /// set is processed `chunk` columns at a time and each `n × chunk`
    /// block is handed to `sink` before the next is computed — the
    /// streaming regime for very large `|Q|` where the full `n × |Q|`
    /// block would not fit (the memory growth of Figures 7/9, capped).
    pub fn multi_source_chunked(
        &self,
        queries: &[usize],
        chunk: usize,
        mut sink: impl FnMut(&[usize], &DenseMatrix),
    ) -> Result<(), CoSimRankError> {
        if chunk == 0 {
            return Err(CoSimRankError::InvalidConfig {
                message: "multi_source_chunked: chunk must be positive".into(),
            });
        }
        for part in queries.chunks(chunk) {
            let block = self.multi_source(part)?;
            sink(part, &block);
        }
        Ok(())
    }

    /// Partial-pairs similarity block `[S]_{A,B}` — every pair between
    /// two node sets, in `O(|A|·|B|·r)` after the shared precompute
    /// (the partial-pairs regime of Yu & McCann 2015, expressed through
    /// Theorem 3.5: `[S]_{A,B} = [Iₙ]_{A,B} + c·[Z]_{A,*}·[U]_{B,*}ᵀ`).
    pub fn partial_pairs(
        &self,
        rows: &[usize],
        cols: &[usize],
    ) -> Result<DenseMatrix, CoSimRankError> {
        for &x in rows.iter().chain(cols.iter()) {
            if x >= self.n {
                return Err(CoSimRankError::QueryOutOfBounds { node: x, n: self.n });
            }
        }
        let internal_rows = self.internal_queries(rows)?;
        let internal_cols = self.internal_queries(cols)?;
        let za = self.z.select_rows(&internal_rows); // |A| × r
        let ub = self.u.select_rows(&internal_cols); // |B| × r
        let mut s = DenseMatrix::zeros(rows.len(), cols.len()); // |A| × |B|
        match (za.factor_view(), ub.factor_view()) {
            (FactorView::F64(a), FactorView::F64(b)) => {
                csrplus_linalg::matmul_into(a, b.t(), s.view_mut(), csrplus_par::threads())?
            }
            (FactorView::F32(a), FactorView::F32(b)) => {
                csrplus_linalg::matmul_into_mixed(a, b.t(), s.view_mut(), csrplus_par::threads())?
            }
            _ => unreachable!("U and Z always share one storage precision"),
        }
        s.scale_in_place(self.config.damping);
        for (i, &a) in rows.iter().enumerate() {
            for (j, &b) in cols.iter().enumerate() {
                if a == b {
                    let v = s.get(i, j) + 1.0;
                    s.set(i, j, v);
                }
            }
        }
        Ok(s)
    }

    /// Single-source similarity column `[S]_{*,q}`.
    pub fn single_source(&self, q: usize) -> Result<Vec<f64>, CoSimRankError> {
        Ok(self.multi_source(&[q])?.into_vec())
    }

    /// Multi-source query returned as one owned column per query node —
    /// the batch entry point the serving layer scatters back to waiting
    /// requests.  Column `j` is `[S]_{*,queries[j]}`, bitwise equal to
    /// `single_source(queries[j])` (each entry of the batched product is
    /// the same independent dot product the unbatched path computes), so
    /// coalescing concurrent requests never changes their answers.
    ///
    /// # Errors
    /// [`CoSimRankError::QueryOutOfBounds`] on an invalid node id.
    pub fn query_columns(&self, queries: &[usize]) -> Result<Vec<Vec<f64>>, CoSimRankError> {
        let mut scratch = DenseMatrix::zeros(0, 0);
        self.query_columns_into(queries, &mut scratch)
    }

    /// [`CsrPlusModel::query_columns`] evaluating through a caller-owned
    /// scratch block: the `n × |Q|` similarity matrix is written into
    /// `scratch` (resized in place, reusing its allocation) and only the
    /// per-query output columns are freshly allocated — they are handed
    /// off to the waiting requests, so they cannot be pooled here.  The
    /// serving batcher keeps one scratch per worker and calls this in its
    /// steady state.
    pub fn query_columns_into(
        &self,
        queries: &[usize],
        scratch: &mut DenseMatrix,
    ) -> Result<Vec<Vec<f64>>, CoSimRankError> {
        self.query_columns_rank_into(queries, self.rank(), scratch)
    }

    /// [`CsrPlusModel::query_columns_into`] truncated to the leading
    /// `rank` factor columns (see
    /// [`CsrPlusModel::multi_source_rank_into`]) — the serving layer's
    /// pressure-degradation entry point.  At `rank ≥ r` the answers are
    /// bitwise identical to the full-rank path.
    ///
    /// # Errors
    /// [`CoSimRankError::QueryOutOfBounds`] on an invalid node id.
    pub fn query_columns_rank_into(
        &self,
        queries: &[usize],
        rank: usize,
        scratch: &mut DenseMatrix,
    ) -> Result<Vec<Vec<f64>>, CoSimRankError> {
        match &self.perm {
            None => {
                self.multi_source_rank_into(queries, rank, scratch)?;
                if let [_] = queries {
                    // |Q| = 1: the n×1 result block already is the column.
                    return Ok(vec![scratch.as_slice().to_vec()]);
                }
                Self::gather_columns(scratch, self.n, queries.len(), None)
            }
            Some(p) => {
                // Evaluate internally, gather columns scattering each row
                // to its original id in one pass (no row-scatter
                // intermediate).
                let internal = self.internal_queries(queries)?;
                self.multi_source_internal_into(&internal, 0, self.n, rank, scratch)?;
                Self::gather_columns(scratch, self.n, queries.len(), Some(&p.order))
            }
        }
    }

    /// Partial columns for a contiguous internal row range `lo..hi` — the
    /// per-shard sibling of [`CsrPlusModel::query_columns_into`].  Entry
    /// `i` of a returned column is internal row `lo + i` (use
    /// [`CsrPlusModel::original_id`] to translate); the values are
    /// bitwise equal to the corresponding entries of the full column.
    pub fn query_columns_range_into(
        &self,
        queries: &[usize],
        lo: usize,
        hi: usize,
        scratch: &mut DenseMatrix,
    ) -> Result<Vec<Vec<f64>>, CoSimRankError> {
        self.query_columns_range_rank_into(queries, lo, hi, self.rank(), scratch)
    }

    /// [`CsrPlusModel::query_columns_range_into`] truncated to the
    /// leading `rank` factor columns — what a shard server evaluates
    /// when the coordinator forwards a degraded-rank request.  At
    /// `rank ≥ r` the partial columns are bitwise identical to the
    /// full-rank ones.
    ///
    /// # Errors
    /// [`CoSimRankError::QueryOutOfBounds`] on an invalid node id,
    /// [`CoSimRankError::InvalidConfig`] on an invalid range.
    pub fn query_columns_range_rank_into(
        &self,
        queries: &[usize],
        lo: usize,
        hi: usize,
        rank: usize,
        scratch: &mut DenseMatrix,
    ) -> Result<Vec<Vec<f64>>, CoSimRankError> {
        if lo > hi || hi > self.n {
            return Err(CoSimRankError::InvalidConfig {
                message: format!("row range {lo}..{hi} invalid for n = {}", self.n),
            });
        }
        let internal = self.internal_queries(queries)?;
        self.multi_source_internal_into(&internal, lo, hi, rank, scratch)?;
        if let [_] = queries {
            return Ok(vec![scratch.as_slice().to_vec()]);
        }
        Self::gather_columns(scratch, hi - lo, queries.len(), None)
    }

    /// Gathers the `w` columns of the `rows × w` block `s` into owned
    /// vectors, optionally scattering row `i` to `order[i]`.  The strided
    /// gather is memory-bound; the query set is split into
    /// shape-determined blocks over the shared pool.
    fn gather_columns(
        s: &DenseMatrix,
        rows: usize,
        w: usize,
        order: Option<&[u32]>,
    ) -> Result<Vec<Vec<f64>>, CoSimRankError> {
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); w];
        let chunk = csrplus_par::chunk_len(w, rows.max(1), MIN_ONLINE_WORK);
        csrplus_par::for_each_chunk_mut(&mut cols, chunk, csrplus_par::threads(), |ci, block| {
            let j0 = ci * chunk;
            for (off, col) in block.iter_mut().enumerate() {
                let j = j0 + off;
                match order {
                    None => *col = (0..rows).map(|i| s.get(i, j)).collect(),
                    Some(order) => {
                        let mut v = vec![0.0; rows];
                        for (i, &orig) in order.iter().enumerate() {
                            v[orig as usize] = s.get(i, j);
                        }
                        *col = v;
                    }
                }
            }
        });
        Ok(cols)
    }

    /// Single-pair similarity `[S]_{a,b} = [a=b] + c·Z[a,:]·U[b,:]ᵀ`.
    pub fn similarity(&self, a: usize, b: usize) -> Result<f64, CoSimRankError> {
        if a >= self.n {
            return Err(CoSimRankError::QueryOutOfBounds { node: a, n: self.n });
        }
        if b >= self.n {
            return Err(CoSimRankError::QueryOutOfBounds { node: b, n: self.n });
        }
        let base = if a == b { 1.0 } else { 0.0 };
        let (ia, ib) = (self.internal_row(a), self.internal_row(b));
        Ok(base + self.config.damping * self.z.row_ref(ia).dot(self.u.row_ref(ib)))
    }

    /// All-pairs similarity `S = Iₙ + c·Z·Uᵀ` — an `n × n` dense matrix,
    /// so it is guarded by a [`MemoryBudget`].
    pub fn all_pairs(&self, budget: &MemoryBudget) -> Result<DenseMatrix, CoSimRankError> {
        budget.check("all-pairs S (n×n)", csrplus_memtrack::model::dense(self.n, self.n))?;
        let queries: Vec<usize> = (0..self.n).collect();
        self.multi_source(&queries)
    }

    /// Top-`k` most similar nodes to `q` (excluding `q` itself), sorted by
    /// descending similarity with node id as tie-break.
    pub fn top_k(&self, q: usize, k: usize) -> Result<Vec<(usize, f64)>, CoSimRankError> {
        let col = self.single_source(q)?;
        let mut scored: Vec<(usize, f64)> =
            col.into_iter().enumerate().filter(|&(i, _)| i != q).collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        Ok(scored)
    }

    /// Top-`k` retrieval with split Cauchy–Schwarz pruning.
    ///
    /// The naive bound `c·‖Z[x,:]‖·‖U[q,:]‖` is too loose on low-rank
    /// models: every row is dominated by the leading-σ coordinate, so the
    /// bound barely discriminates between candidates.  Instead the first
    /// coordinate enters *exactly* (it is signed — for most pairs it
    /// cancels against the remainder) and Cauchy–Schwarz covers only the
    /// tail:
    ///
    /// ```text
    /// score(x) = c·⟨Z[x,:], U[q,:]⟩
    ///          ≤ c·(Z[x,0]·U[q,0] + ‖Z[x,1..]‖·‖U[q,1..]‖) =: bound(x)
    /// ```
    ///
    /// Candidates are visited in descending `bound(x)` order and the scan
    /// stops as soon as `bound` cannot beat the current k-th best score —
    /// typically touching a small fraction of the nodes on skewed
    /// (real-world) score distributions.  Returns exactly what
    /// [`CsrPlusModel::top_k`] returns: score ties break by ascending
    /// *original* node id, so reordered and identity models agree on the
    /// result set.
    pub fn top_k_pruned(&self, q: usize, k: usize) -> Result<Vec<(usize, f64)>, CoSimRankError> {
        Ok(self.top_k_pruned_with_stats(q, k)?.0)
    }

    /// [`CsrPlusModel::top_k_pruned`] plus the number of candidates whose
    /// exact score was actually computed — the pruning-effectiveness
    /// metric reported by the ablation benches.
    pub fn top_k_pruned_with_stats(
        &self,
        q: usize,
        k: usize,
    ) -> Result<(Vec<(usize, f64)>, usize), CoSimRankError> {
        self.top_k_pruned_range_with_stats(q, k, 0, self.n)
    }

    /// Pruned top-`k` restricted to candidates in the contiguous
    /// *internal* row range `lo..hi` — what one shard contributes to a
    /// scatter-gather query.  Returned ids are original node ids.  The
    /// full range `0..n` is [`CsrPlusModel::top_k_pruned`] itself.
    pub fn top_k_pruned_range(
        &self,
        q: usize,
        k: usize,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<(usize, f64)>, CoSimRankError> {
        Ok(self.top_k_pruned_range_with_stats(q, k, lo, hi)?.0)
    }

    /// [`CsrPlusModel::top_k_pruned_range`] with the scanned-candidates
    /// count.
    ///
    /// # Errors
    /// [`CoSimRankError::QueryOutOfBounds`] on an invalid query node,
    /// [`CoSimRankError::InvalidConfig`] on an invalid range.
    pub fn top_k_pruned_range_with_stats(
        &self,
        q: usize,
        k: usize,
        lo: usize,
        hi: usize,
    ) -> Result<(Vec<(usize, f64)>, usize), CoSimRankError> {
        if q >= self.n {
            return Err(CoSimRankError::QueryOutOfBounds { node: q, n: self.n });
        }
        if lo > hi || hi > self.n {
            return Err(CoSimRankError::InvalidConfig {
                message: format!("row range {lo}..{hi} invalid for n = {}", self.n),
            });
        }
        if k == 0 || lo == hi {
            return Ok((Vec::new(), 0));
        }
        let c = self.config.damping;
        let q_internal = self.internal_row(q);
        let uq = self.u.row_ref(q_internal);
        let uq0 = uq.first();
        let uq_rest = uq.tail_norm2();
        // Per-query candidate order: descending split bound.  O(n log n)
        // in cheap O(1)-per-node bounds, traded for skipping O(r) exact
        // dot products on everything past the break point.  The bound
        // map fill is embarrassingly parallel (one slot per node), so it
        // runs on the shared pool; the early-break scan below stays
        // sequential by construction.
        let rows = hi - lo;
        let mut order: Vec<(f64, u32)> = vec![(0.0, 0); rows];
        let chunk = csrplus_par::chunk_len(rows, 4, MIN_ONLINE_WORK);
        let z_split = &self.z_split;
        csrplus_par::for_each_chunk_mut(&mut order, chunk, csrplus_par::threads(), |ci, out| {
            let base = lo + ci * chunk;
            for (off, slot) in out.iter_mut().enumerate() {
                let x = base + off;
                let (z0, zrest) = z_split[x];
                *slot = (c * (z0 * uq0 + zrest * uq_rest), x as u32);
            }
        });
        order.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        let mut kth_score = f64::NEG_INFINITY;
        let mut scanned = 0usize;
        for &(bound, x) in &order {
            let x = x as usize;
            if best.len() == k && bound < kth_score {
                break; // no remaining candidate can beat the k-th best
            }
            if x == q_internal {
                continue; // top_k excludes the query itself
            }
            scanned += 1;
            let score = c * self.z.row_ref(x).dot(uq);
            // `>=`, not `>`: an equal score can still displace the
            // current k-th best on the original-id tie-break, so ties at
            // the threshold must enter the candidate set for the result
            // to be independent of the (bound-driven) scan order.
            if best.len() < k || score >= kth_score {
                best.push((self.original_id(x), score));
                best.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
                });
                best.truncate(k);
                kth_score = if best.len() == k { best[k - 1].1 } else { f64::NEG_INFINITY };
            }
        }
        Ok((best, scanned))
    }

    /// Similarity join: every ordered pair `(x, y)`, `x ≠ y`, with
    /// `[S]_{x,y} ≥ threshold`, found without materialising the `n×n`
    /// matrix.  Candidates are enumerated in descending-norm order on
    /// both sides and pruned with `c·‖Z[x]‖·‖U[y]‖ < threshold`, so the
    /// scan cost adapts to the score distribution instead of being
    /// `Θ(n²)`.  Pairs come back sorted by descending similarity.
    ///
    /// `threshold` must be positive: the bound only prunes positive
    /// scores, and CoSimRank joins below 0 are meaningless (exact
    /// similarities are non-negative).
    pub fn similarity_join(
        &self,
        threshold: f64,
        budget: &MemoryBudget,
    ) -> Result<Vec<(usize, usize, f64)>, CoSimRankError> {
        if threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CoSimRankError::InvalidConfig {
                message: format!("similarity_join threshold {threshold} must be > 0"),
            });
        }
        let c = self.config.damping;
        let u_norms_desc = sorted_row_norms(&self.u);
        let mut out: Vec<(usize, usize, f64)> = Vec::new();
        for &(zn, x) in &self.z_norms_desc {
            // The largest possible score for this x is against the
            // largest ‖u‖; once even that dies, every later x (smaller
            // ‖z‖) dies too.
            let best_possible = c * zn * u_norms_desc.first().map_or(0.0, |p| p.0);
            if best_possible < threshold {
                break;
            }
            let x = x as usize;
            for &(un, y) in &u_norms_desc {
                if c * zn * un < threshold {
                    break; // u-norms only shrink from here
                }
                let y = y as usize;
                if x == y {
                    continue;
                }
                let score = c * self.z.row_ref(x).dot(self.u.row_ref(y));
                if score >= threshold {
                    // Norm-table ids are internal rows; report originals.
                    out.push((self.original_id(x), self.original_id(y), score));
                    // Guard unbounded result sets (dense near-clique
                    // graphs at tiny thresholds).
                    budget.check(
                        "similarity-join result set",
                        out.capacity() * std::mem::size_of::<(usize, usize, f64)>(),
                    )?;
                }
            }
        }
        out.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        Ok(out)
    }

    /// Measured heap footprint of the memoised state (bytes).
    pub fn heap_bytes(&self) -> usize {
        let perm_bytes = self
            .perm
            .as_ref()
            .map_or(0, |p| (p.order.capacity() + p.rank.capacity()) * std::mem::size_of::<u32>());
        self.u.heap_bytes()
            + self.z.heap_bytes()
            + self.p.heap_bytes()
            + self.h0.heap_bytes()
            + self.sigma.capacity() * std::mem::size_of::<f64>()
            + perm_bytes
    }
}

/// Row norms of `m` with their row ids, sorted descending.  The norm
/// table fill runs on the shared pool (one slot per row); the sort stays
/// serial and total order is unaffected by chunking.
fn sorted_row_norms(m: &Factor) -> Vec<(f64, u32)> {
    let mut norms: Vec<(f64, u32)> = vec![(0.0, 0); m.rows()];
    let chunk = csrplus_par::chunk_len(m.rows(), 2 * m.cols().max(1), MIN_ONLINE_WORK);
    csrplus_par::for_each_chunk_mut(&mut norms, chunk, csrplus_par::threads(), |ci, out| {
        let lo = ci * chunk;
        for (off, slot) in out.iter_mut().enumerate() {
            let i = lo + off;
            *slot = (m.row_ref(i).norm2(), i as u32);
        }
    });
    norms.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    norms
}

/// Per-row `(m[i,0], ‖m[i,1..]‖)` — the exact leading coordinate plus the
/// norm of the tail, feeding the split retrieval bound of
/// [`CsrPlusModel::top_k_pruned`].  Filled on the shared pool, one slot
/// per row.
fn split_row_bounds(m: &Factor) -> Vec<(f64, f64)> {
    let mut bounds: Vec<(f64, f64)> = vec![(0.0, 0.0); m.rows()];
    let chunk = csrplus_par::chunk_len(m.rows(), 2 * m.cols().max(1), MIN_ONLINE_WORK);
    csrplus_par::for_each_chunk_mut(&mut bounds, chunk, csrplus_par::threads(), |ci, out| {
        let lo = ci * chunk;
        for (off, slot) in out.iter_mut().enumerate() {
            let row = m.row_ref(lo + off);
            *slot = (row.first(), row.tail_norm2());
        }
    });
    bounds
}

/// Solves `P = c·H·P·Hᵀ + I_r` by repeated squaring (Algorithm 1, line 5):
/// `P_{k+1} = P_k + c^{2^k}·H_k·P_k·H_kᵀ`, `H_{k+1} = H_k²`.
///
/// After `k` iterations `P_k` equals the first `2^k` terms of
/// `Σ_j c^j H^j (Hᵀ)^j`, so the iteration count from
/// [`crate::config::squaring_iterations`] guarantees `‖P_k − P‖ < ε`.
pub fn solve_subspace_fixed_point(
    h0: &DenseMatrix,
    damping: f64,
    iterations: usize,
) -> Result<DenseMatrix, CoSimRankError> {
    let r = h0.rows();
    let mut p = DenseMatrix::identity(r);
    let mut h = h0.clone();
    let mut factor = damping;
    for _ in 0..iterations {
        // P ← P + factor · H·P·Hᵀ
        let hp = h.matmul(&p)?;
        let hpht = hp.matmul_transpose_b(&h)?;
        p.add_scaled(factor, &hpht)?;
        // H ← H², factor ← factor².
        h = h.matmul(&h)?;
        factor *= factor;
    }
    Ok(p)
}

/// Reference linear iteration for the same fixed point (used by the
/// repeated-squaring ablation): `P ← c·H·P·Hᵀ + I_r`, `iterations` times.
pub fn solve_subspace_fixed_point_linear(
    h0: &DenseMatrix,
    damping: f64,
    iterations: usize,
) -> Result<DenseMatrix, CoSimRankError> {
    let r = h0.rows();
    let mut p = DenseMatrix::identity(r);
    for _ in 0..iterations {
        let hp = h0.matmul(&p)?;
        let mut hpht = hp.matmul_transpose_b(h0)?;
        hpht.scale_in_place(damping);
        hpht.add_diag(1.0)?;
        p = hpht;
    }
    Ok(p)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the matrix math
mod tests {
    use super::*;
    use csrplus_graph::generators::{classic::cycle, figure1_graph};

    fn fig1_model(rank: usize) -> CsrPlusModel {
        let g = figure1_graph();
        let t = TransitionMatrix::from_graph(&g);
        let cfg = CsrPlusConfig { rank, ..Default::default() };
        CsrPlusModel::precompute(&t, &cfg).unwrap()
    }

    #[test]
    fn query_columns_bitwise_matches_single_source() {
        let m = fig1_model(3);
        let queries = [0usize, 2, 4, 5, 2]; // includes a duplicate
        let cols = m.query_columns(&queries).unwrap();
        assert_eq!(cols.len(), queries.len());
        for (&q, col) in queries.iter().zip(&cols) {
            let single = m.single_source(q).unwrap();
            assert_eq!(col, &single, "column for node {q} must be bitwise equal");
        }
        // |Q| = 1 fast path and the empty batch.
        assert_eq!(m.query_columns(&[3]).unwrap()[0], m.single_source(3).unwrap());
        assert!(m.query_columns(&[]).unwrap().is_empty());
    }

    #[test]
    fn rank_truncated_queries_match_the_prefix_dot_product() {
        // Ground truth for a rank-t truncated query, straight from the
        // factors: S_t[i,q] = [i=q] + c·Σ_{j<t} Z[i,j]·U[q,j] — the same
        // sum the kernel computes over the leading-t column prefix.
        let m = fig1_model(3);
        let c = m.config().damping;
        let queries = [1usize, 3, 4];
        for t in 1..=3usize {
            let mut scratch = DenseMatrix::zeros(0, 0);
            let cols = m.query_columns_rank_into(&queries, t, &mut scratch).unwrap();
            for (&q, col) in queries.iter().zip(&cols) {
                for i in 0..m.n() {
                    let dot: f64 = (0..t).map(|j| m.z().get(i, j) * m.u().get(q, j)).sum();
                    let want = if i == q { 1.0 } else { 0.0 } + c * dot;
                    assert!(
                        (col[i] - want).abs() < 1e-12,
                        "rank {t}, node {q}, row {i}: {} vs {want}",
                        col[i]
                    );
                }
            }
        }
    }

    #[test]
    fn full_rank_truncation_is_bitwise_identity() {
        let m = fig1_model(3);
        let queries = [0usize, 2, 5];
        let mut scratch = DenseMatrix::zeros(0, 0);
        // rank = r and any rank above it route through the same views.
        for rank in [3usize, 10, usize::MAX] {
            let cols = m.query_columns_rank_into(&queries, rank, &mut scratch).unwrap();
            let reference = m.query_columns(&queries).unwrap();
            assert_eq!(cols, reference, "rank {rank} must be the identity truncation");
        }
        // Range variant too (the shard path).
        let a = m.query_columns_range_rank_into(&queries, 1, 5, 3, &mut scratch).unwrap();
        let b = m.query_columns_range_into(&queries, 1, 5, &mut scratch).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_range_concatenates_into_the_truncated_column() {
        // Shard slices of a degraded evaluation must reassemble into the
        // single-process degraded answer, just like the full-rank ones.
        let m = fig1_model(3);
        let queries = [2usize, 4];
        let mut scratch = DenseMatrix::zeros(0, 0);
        let whole = m.query_columns_rank_into(&queries, 2, &mut scratch).unwrap();
        let lo_part = m.query_columns_range_rank_into(&queries, 0, 3, 2, &mut scratch).unwrap();
        let hi_part = m.query_columns_range_rank_into(&queries, 3, 6, 2, &mut scratch).unwrap();
        for (j, col) in whole.iter().enumerate() {
            let stitched: Vec<f64> = lo_part[j].iter().chain(hi_part[j].iter()).copied().collect();
            assert_eq!(col, &stitched, "query {j}");
        }
        // The diagonal +1 lands on the truncated diagonal as well.
        let mut diag = DenseMatrix::zeros(0, 0);
        m.multi_source_rank_into(&[2], 1, &mut diag).unwrap();
        assert!(diag.get(2, 0) > 1.0, "self-similarity keeps its identity term");
    }

    #[test]
    fn query_columns_rejects_out_of_bounds() {
        let m = fig1_model(3);
        assert!(matches!(
            m.query_columns(&[1, 99]),
            Err(CoSimRankError::QueryOutOfBounds { node: 99, .. })
        ));
    }

    #[test]
    fn precompute_stats_cover_all_phases() {
        let g = figure1_graph();
        let t = TransitionMatrix::from_graph(&g);
        let cfg = CsrPlusConfig { rank: 3, ..Default::default() };
        let (model, stats) = CsrPlusModel::precompute_with_stats(&t, &cfg).unwrap();
        assert_eq!(stats.squaring_iterations, cfg.squaring_iterations());
        assert!(stats.svd > std::time::Duration::ZERO);
        assert_eq!(stats.total(), stats.svd + stats.subspace + stats.memoise);
        // And the model is the same as the plain entry point's.
        let plain = CsrPlusModel::precompute(&t, &cfg).unwrap();
        let a = model.multi_source(&[1]).unwrap();
        let b = plain.multi_source(&[1]).unwrap();
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn worked_example_3_6_singular_values() {
        // The paper prints Σ = diag(1.73, 0.87, 0.54) for rank 3.
        let m = fig1_model(3);
        assert!((m.sigma()[0] - 1.73).abs() < 0.01, "{:?}", m.sigma());
        assert!((m.sigma()[1] - 0.87).abs() < 0.01);
        assert!((m.sigma()[2] - 0.54).abs() < 0.01);
    }

    #[test]
    fn worked_example_3_6_similarities() {
        // Final output of Example 3.6 for Q = {b, d} (2-dp values).
        let m = fig1_model(3);
        let s = m.multi_source(&[1, 3]).unwrap();
        let expected_b = [0.16, 1.49, 0.16, 0.49, 0.48, 0.16];
        let expected_d = [0.16, 0.49, 0.16, 1.49, 0.48, 0.16];
        for i in 0..6 {
            assert!(
                (s.get(i, 0) - expected_b[i]).abs() < 0.02,
                "S[{i},b] = {} want {}",
                s.get(i, 0),
                expected_b[i]
            );
            assert!(
                (s.get(i, 1) - expected_d[i]).abs() < 0.02,
                "S[{i},d] = {} want {}",
                s.get(i, 1),
                expected_d[i]
            );
        }
    }

    #[test]
    fn lanczos_backend_reproduces_worked_example() {
        let g = figure1_graph();
        let t = TransitionMatrix::from_graph(&g);
        let cfg = CsrPlusConfig {
            rank: 3,
            backend: crate::config::SvdBackend::Lanczos,
            ..Default::default()
        };
        let m = CsrPlusModel::precompute(&t, &cfg).unwrap();
        assert!((m.sigma()[0] - 1.73).abs() < 0.01);
        let s = m.multi_source(&[1, 3]).unwrap();
        assert!((s.get(1, 0) - 1.49).abs() < 0.02);
        assert!((s.get(3, 0) - 0.49).abs() < 0.02);
    }

    #[test]
    fn backends_agree_on_full_rank() {
        let g = figure1_graph();
        let t = TransitionMatrix::from_graph(&g);
        let mk = |backend| {
            let cfg = CsrPlusConfig { rank: 4, epsilon: 1e-12, backend, ..Default::default() };
            CsrPlusModel::precompute(&t, &cfg).unwrap().multi_source(&[0, 1, 2]).unwrap()
        };
        let a = mk(crate::config::SvdBackend::Randomized);
        let b = mk(crate::config::SvdBackend::Lanczos);
        assert!(a.approx_eq(&b, 1e-6), "backend diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn subspace_fixed_point_matches_linear_iteration() {
        let m = fig1_model(3);
        let sq = solve_subspace_fixed_point(m.h0(), 0.6, 5).unwrap();
        let lin = solve_subspace_fixed_point_linear(m.h0(), 0.6, 64).unwrap();
        assert!(sq.approx_eq(&lin, 1e-6), "diff {}", sq.max_abs_diff(&lin));
    }

    #[test]
    fn fixed_point_satisfies_equation() {
        // P must satisfy P = c·HPHᵀ + I to within ε.
        let m = fig1_model(3);
        let p = m.p();
        let hp = m.h0().matmul(p).unwrap();
        let mut rhs = hp.matmul_transpose_b(m.h0()).unwrap();
        rhs.scale_in_place(0.6);
        rhs.add_diag(1.0).unwrap();
        assert!(p.approx_eq(&rhs, 1e-5), "residual {}", p.max_abs_diff(&rhs));
    }

    #[test]
    fn p_is_symmetric_with_unit_plus_diagonal() {
        let m = fig1_model(3);
        let p = m.p();
        for i in 0..3 {
            assert!(p.get(i, i) >= 1.0 - 1e-9, "P[{i},{i}] = {}", p.get(i, i));
            for j in 0..3 {
                assert!((p.get(i, j) - p.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multi_source_columns_match_single_source() {
        let m = fig1_model(3);
        let s = m.multi_source(&[0, 2, 5]).unwrap();
        for (j, &q) in [0usize, 2, 5].iter().enumerate() {
            let col = m.single_source(q).unwrap();
            for i in 0..6 {
                assert!((s.get(i, j) - col[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn chunked_multi_source_matches_monolithic() {
        let m = fig1_model(3);
        let queries = [0usize, 1, 2, 3, 4, 5];
        let full = m.multi_source(&queries).unwrap();
        for chunk in [1usize, 2, 4, 6, 100] {
            let mut seen = 0usize;
            m.multi_source_chunked(&queries, chunk, |part, block| {
                assert_eq!(block.shape(), (6, part.len()));
                for (j, _) in part.iter().enumerate() {
                    for i in 0..6 {
                        assert!((block.get(i, j) - full.get(i, seen + j)).abs() < 1e-15);
                    }
                }
                seen += part.len();
            })
            .unwrap();
            assert_eq!(seen, queries.len());
        }
        assert!(m.multi_source_chunked(&queries, 0, |_, _| {}).is_err());
    }

    #[test]
    fn partial_pairs_matches_full_matrix() {
        let m = fig1_model(3);
        let s_all = m.all_pairs(&MemoryBudget::unlimited()).unwrap();
        let rows = [0usize, 3, 5];
        let cols = [1usize, 3];
        let block = m.partial_pairs(&rows, &cols).unwrap();
        assert_eq!(block.shape(), (3, 2));
        for (i, &a) in rows.iter().enumerate() {
            for (j, &b) in cols.iter().enumerate() {
                assert!((block.get(i, j) - s_all.get(a, b)).abs() < 1e-12);
            }
        }
        assert!(m.partial_pairs(&[9], &[0]).is_err());
        assert!(m.partial_pairs(&[0], &[9]).is_err());
    }

    #[test]
    fn similarity_matches_matrix_entry() {
        let m = fig1_model(3);
        let s = m.all_pairs(&MemoryBudget::unlimited()).unwrap();
        for a in 0..6 {
            for b in 0..6 {
                let pair = m.similarity(a, b).unwrap();
                assert!((pair - s.get(a, b)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let m = fig1_model(3);
        let s = m.all_pairs(&MemoryBudget::unlimited()).unwrap();
        assert!(s.approx_eq(&s.transpose(), 1e-9));
    }

    #[test]
    fn query_out_of_bounds_rejected() {
        let m = fig1_model(3);
        assert!(matches!(
            m.multi_source(&[6]),
            Err(CoSimRankError::QueryOutOfBounds { node: 6, n: 6 })
        ));
        assert!(m.similarity(0, 99).is_err());
        assert!(m.similarity(99, 0).is_err());
    }

    #[test]
    fn all_pairs_respects_budget() {
        let m = fig1_model(3);
        let tiny = MemoryBudget::new(8);
        let err = m.all_pairs(&tiny).unwrap_err();
        assert!(err.is_memory_crash());
    }

    #[test]
    fn top_k_excludes_query_and_sorts() {
        let m = fig1_model(3);
        let top = m.top_k(1, 3).unwrap(); // node b
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|&(i, _)| i != 1));
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // In Example 3.6, d is the most similar node to b (0.49).
        assert_eq!(top[0].0, 3);
    }

    #[test]
    fn similarity_join_matches_brute_force() {
        let m = fig1_model(3);
        let s = m.all_pairs(&MemoryBudget::unlimited()).unwrap();
        for threshold in [0.1f64, 0.3, 0.5, 1.0] {
            let joined = m.similarity_join(threshold, &MemoryBudget::unlimited()).unwrap();
            // Brute-force reference.
            let mut want: Vec<(usize, usize, f64)> = Vec::new();
            for x in 0..6 {
                for y in 0..6 {
                    if x != y && s.get(x, y) >= threshold {
                        want.push((x, y, s.get(x, y)));
                    }
                }
            }
            assert_eq!(joined.len(), want.len(), "threshold {threshold}");
            let got: std::collections::HashSet<(usize, usize)> =
                joined.iter().map(|&(x, y, _)| (x, y)).collect();
            for (x, y, _) in want {
                assert!(got.contains(&(x, y)), "missing ({x},{y}) at {threshold}");
            }
            // Sorted by descending score.
            for w in joined.windows(2) {
                assert!(w[0].2 >= w[1].2 - 1e-12);
            }
        }
    }

    #[test]
    fn similarity_join_validates_threshold() {
        let m = fig1_model(3);
        assert!(m.similarity_join(0.0, &MemoryBudget::unlimited()).is_err());
        assert!(m.similarity_join(-1.0, &MemoryBudget::unlimited()).is_err());
        // A threshold above every off-diagonal score yields nothing.
        let empty = m.similarity_join(10.0, &MemoryBudget::unlimited()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn pruned_top_k_matches_naive() {
        let m = fig1_model(3);
        for q in 0..6 {
            for k in [1usize, 3, 5, 10] {
                let naive = m.top_k(q, k).unwrap();
                let pruned = m.top_k_pruned(q, k).unwrap();
                assert_eq!(naive.len(), pruned.len(), "q={q} k={k}");
                for (a, b) in naive.iter().zip(pruned.iter()) {
                    assert_eq!(a.0, b.0, "q={q} k={k}: {naive:?} vs {pruned:?}");
                    assert!((a.1 - b.1).abs() < 1e-12);
                }
            }
        }
        assert!(m.top_k_pruned(9, 3).is_err());
        assert!(m.top_k_pruned(0, 0).unwrap().is_empty());
    }

    /// The fig-1 model relabeled under `order[internal] = original`:
    /// factors built by gathering the identity model's rows, so permuted
    /// answers must match the identity model's *bitwise*.
    fn permuted_fig1_model(rank: usize, order: Vec<u32>) -> (CsrPlusModel, CsrPlusModel) {
        let identity = fig1_model(rank);
        let r = identity.rank();
        let gather =
            |f: &Factor| f.select_rows(&order.iter().map(|&o| o as usize).collect::<Vec<_>>());
        let n = identity.n();
        let permuted = CsrPlusModel::from_factors(
            *identity.config(),
            n,
            gather(identity.u()),
            gather(identity.z()),
            identity.sigma().to_vec(),
            identity.p().clone(),
            identity.h0().clone(),
        )
        .unwrap()
        .with_permutation(order, Reordering::Rcm)
        .unwrap();
        assert_eq!(permuted.rank(), r);
        (identity, permuted)
    }

    #[test]
    fn permuted_model_answers_in_original_ids() {
        let (identity, permuted) = permuted_fig1_model(3, vec![5, 3, 0, 1, 4, 2]);
        assert!(identity.permutation().is_none());
        assert_eq!(permuted.permutation().unwrap().kind(), Reordering::Rcm);
        // Whole multi-source block, row-scattered back to original ids.
        let a = identity.multi_source(&[1, 3]).unwrap();
        let b = permuted.multi_source(&[1, 3]).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        // Batched columns, single columns, pairs.
        assert_eq!(
            identity.query_columns(&[0, 4, 2]).unwrap(),
            permuted.query_columns(&[0, 4, 2]).unwrap()
        );
        assert_eq!(identity.single_source(5).unwrap(), permuted.single_source(5).unwrap());
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(
                    identity.similarity(a, b).unwrap().to_bits(),
                    permuted.similarity(a, b).unwrap().to_bits()
                );
            }
        }
        let pa = identity.partial_pairs(&[0, 3], &[1, 5]).unwrap();
        let pb = permuted.partial_pairs(&[0, 3], &[1, 5]).unwrap();
        assert_eq!(pa.as_slice(), pb.as_slice());
        // Top-k and the join report original ids.
        for q in 0..6 {
            assert_eq!(identity.top_k_pruned(q, 3).unwrap(), permuted.top_k_pruned(q, 3).unwrap());
        }
        assert_eq!(
            identity.similarity_join(0.3, &MemoryBudget::unlimited()).unwrap(),
            permuted.similarity_join(0.3, &MemoryBudget::unlimited()).unwrap()
        );
    }

    #[test]
    fn with_permutation_validates_and_normalises() {
        let m = fig1_model(3);
        assert!(m.clone().with_permutation(vec![0, 1], Reordering::Rcm).is_err());
        assert!(m.clone().with_permutation(vec![0, 0, 1, 2, 3, 4], Reordering::Rcm).is_err());
        assert!(m.clone().with_permutation(vec![0, 1, 2, 3, 4, 9], Reordering::Rcm).is_err());
        // Identity order normalises to the permutation-free fast path.
        let id = m.with_permutation(vec![0, 1, 2, 3, 4, 5], Reordering::Rcm).unwrap();
        assert!(id.permutation().is_none());
    }

    #[test]
    fn range_evaluation_bitwise_matches_full() {
        let (_, permuted) = permuted_fig1_model(3, vec![5, 3, 0, 1, 4, 2]);
        for m in [fig1_model(3), permuted] {
            let queries = [1usize, 4];
            let mut full = DenseMatrix::zeros(0, 0);
            m.multi_source_range_into(&queries, 0, 6, &mut full).unwrap();
            for (lo, hi) in [(0usize, 2usize), (2, 5), (5, 6), (3, 3)] {
                let mut part = DenseMatrix::zeros(0, 0);
                m.multi_source_range_into(&queries, lo, hi, &mut part).unwrap();
                assert_eq!(part.shape(), (hi - lo, 2));
                for i in lo..hi {
                    for j in 0..2 {
                        assert_eq!(part.get(i - lo, j).to_bits(), full.get(i, j).to_bits());
                    }
                }
                // Partial columns agree with the full block too.
                let mut scratch = DenseMatrix::zeros(0, 0);
                let cols = m.query_columns_range_into(&queries, lo, hi, &mut scratch).unwrap();
                for (j, col) in cols.iter().enumerate() {
                    assert_eq!(col.len(), hi - lo);
                    for i in lo..hi {
                        assert_eq!(col[i - lo].to_bits(), full.get(i, j).to_bits());
                    }
                }
            }
            assert!(m.multi_source_range_into(&queries, 4, 2, &mut full).is_err());
            assert!(m.multi_source_range_into(&queries, 0, 9, &mut full).is_err());
        }
    }

    #[test]
    fn range_top_k_unions_to_global_top_k() {
        let m = fig1_model(3);
        for q in 0..6 {
            for k in [1usize, 2, 4] {
                let global = m.top_k_pruned(q, k).unwrap();
                let mut merged: Vec<(usize, f64)> = Vec::new();
                for (lo, hi) in [(0usize, 2usize), (2, 4), (4, 6)] {
                    merged.extend(m.top_k_pruned_range(q, k, lo, hi).unwrap());
                }
                merged.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
                });
                merged.truncate(k);
                assert_eq!(global, merged, "q={q} k={k}");
            }
        }
        assert!(m.top_k_pruned_range(0, 3, 5, 2).is_err());
        assert!(m.top_k_pruned_range(0, 3, 0, 0).unwrap().is_empty());
    }

    #[test]
    fn top_k_ties_break_by_original_id_under_permutation() {
        // Hand-built factors with duplicate scores: U identical for all
        // queries, Z rows engineered so nodes {1, 2, 4} tie exactly.
        let n = 6;
        let r = 2;
        let mk = |order: Option<Vec<u32>>| {
            let ident: Vec<u32> = (0..n as u32).collect();
            let ord = order.clone().unwrap_or(ident);
            // Internal row i holds original node ord[i]'s data.
            let score_of = |orig: u32| match orig {
                1 | 2 | 4 => 0.5,
                3 => 0.9,
                _ => 0.1,
            };
            let u = DenseMatrix::from_vec(n, r, [1.0, 0.0].repeat(n)).unwrap();
            let mut zdata = Vec::with_capacity(n * r);
            for &orig in &ord {
                zdata.extend_from_slice(&[score_of(orig), 0.0]);
            }
            let z = DenseMatrix::from_vec(n, r, zdata).unwrap();
            let cfg = CsrPlusConfig { rank: r, ..Default::default() };
            let m = CsrPlusModel::from_parts(
                cfg,
                n,
                u,
                z,
                vec![1.0; r],
                DenseMatrix::identity(r),
                DenseMatrix::identity(r),
            )
            .unwrap();
            match order {
                Some(ord) => m.with_permutation(ord, Reordering::DegreeSort).unwrap(),
                None => m,
            }
        };
        let identity = mk(None);
        let shuffled = mk(Some(vec![4, 0, 2, 5, 1, 3]));
        // k = 2 cuts through the three-way tie at 0.5: the winner set
        // must be {3, 1} (highest score, then smallest original id) for
        // both orderings, for every query node.
        for q in 0..n {
            let a = identity.top_k_pruned(q, 2).unwrap();
            let b = shuffled.top_k_pruned(q, 2).unwrap();
            assert_eq!(a, b, "q={q}");
            let naive = identity.top_k(q, 2).unwrap();
            assert_eq!(a, naive, "q={q} pruned vs naive");
            let want: Vec<usize> = [3usize, 1, 2].into_iter().filter(|&x| x != q).take(2).collect();
            let got: Vec<usize> = a.iter().map(|&(x, _)| x).collect();
            assert_eq!(got, want, "q={q}");
        }
    }

    #[test]
    fn cycle_graph_uniform_structure() {
        // On a directed cycle Q is a permutation matrix; all PPR vectors
        // stay unit mass, so S[a,a] = 1/(1-c) at full rank.
        let g = cycle(8);
        let t = TransitionMatrix::from_graph(&g);
        let cfg = CsrPlusConfig { rank: 8, epsilon: 1e-10, ..Default::default() };
        let m = CsrPlusModel::precompute(&t, &cfg).unwrap();
        let expect = 1.0 / (1.0 - 0.6);
        for i in 0..8 {
            let s = m.similarity(i, i).unwrap();
            assert!((s - expect).abs() < 1e-4, "S[{i},{i}] = {s} want {expect}");
        }
    }

    #[test]
    fn heap_bytes_is_order_rn() {
        let m = fig1_model(3);
        let b = m.heap_bytes();
        // 6 nodes, rank 3: a few hundred bytes, far below n² scale.
        assert!(b > 0 && b < 10_000, "bytes {b}");
    }
}
