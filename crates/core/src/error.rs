//! Unified error type for CoSimRank computations.

use csrplus_linalg::LinalgError;
use csrplus_memtrack::MemoryLimitError;
use std::fmt;

/// Errors surfaced by CSR+ and the baseline algorithms.
#[derive(Debug)]
pub enum CoSimRankError {
    /// A configuration parameter is invalid (rank 0, damping ∉ (0,1), …).
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// A query node id was out of range.
    QueryOutOfBounds {
        /// Offending node id.
        node: usize,
        /// Graph size.
        n: usize,
    },
    /// The algorithm requires a precompute step that has not run yet.
    NotPrecomputed,
    /// The run would exceed its memory budget ("memory crash").
    MemoryLimit(MemoryLimitError),
    /// Underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for CoSimRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoSimRankError::InvalidConfig { message } => write!(f, "invalid config: {message}"),
            CoSimRankError::QueryOutOfBounds { node, n } => {
                write!(f, "query node {node} out of bounds for graph of {n} nodes")
            }
            CoSimRankError::NotPrecomputed => {
                write!(f, "precompute() must run before queries")
            }
            CoSimRankError::MemoryLimit(e) => write!(f, "{e}"),
            CoSimRankError::Linalg(e) => write!(f, "linear algebra: {e}"),
        }
    }
}

impl std::error::Error for CoSimRankError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoSimRankError::MemoryLimit(e) => Some(e),
            CoSimRankError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoSimRankError {
    fn from(e: LinalgError) -> Self {
        CoSimRankError::Linalg(e)
    }
}

impl From<MemoryLimitError> for CoSimRankError {
    fn from(e: MemoryLimitError) -> Self {
        CoSimRankError::MemoryLimit(e)
    }
}

impl CoSimRankError {
    /// True when this error is the budget guard firing (the paper's
    /// "memory crash") rather than a logic failure.
    pub fn is_memory_crash(&self) -> bool {
        matches!(self, CoSimRankError::MemoryLimit(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_classification() {
        let e = CoSimRankError::InvalidConfig { message: "rank 0".into() };
        assert!(e.to_string().contains("rank 0"));
        assert!(!e.is_memory_crash());
        let e = CoSimRankError::QueryOutOfBounds { node: 7, n: 5 };
        assert!(e.to_string().contains("7"));
        let e = CoSimRankError::NotPrecomputed;
        assert!(e.to_string().contains("precompute"));
    }

    #[test]
    fn conversions() {
        let e: CoSimRankError = LinalgError::Singular { context: "lu" }.into();
        assert!(matches!(e, CoSimRankError::Linalg(_)));
        let m = MemoryLimitError { what: "U⊗U".into(), required: 10, budget: 5 };
        let e: CoSimRankError = m.into();
        assert!(e.is_memory_crash());
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
