//! Binary persistence for precomputed CSR+ models.
//!
//! The whole point of the precompute/query split is to pay the SVD once;
//! this module makes the memoised state durable so a service can load a
//! model at startup and answer queries immediately.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic   b"CSRP"            4 bytes
//! version u32                currently 1
//! n, r    u64 × 2
//! damping, epsilon  f64 × 2
//! oversample, power_iterations, seed, backend  u64 × 4
//! sigma   f64 × r
//! U       f64 × n·r  (row-major)
//! Z       f64 × n·r  (row-major)
//! P       f64 × r·r  (row-major)
//! H₀      f64 × r·r  (row-major)
//! crc     u64  (FNV-1a over everything after the magic)
//! ```
//!
//! The checksum guards against truncated or bit-rotted files; versioning
//! guards against silent format drift.

use crate::config::CsrPlusConfig;
use crate::error::CoSimRankError;
use crate::model::CsrPlusModel;
use csrplus_linalg::DenseMatrix;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"CSRP";
const VERSION: u32 = 1;

/// Errors specific to model (de)serialisation.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a CSR+ model (bad magic).
    BadMagic,
    /// The file uses an unsupported format version.
    UnsupportedVersion(u32),
    /// The checksum did not match (truncation or corruption).
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The payload is internally inconsistent (e.g. absurd sizes).
    Malformed(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not a CSR+ model file (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported model version {v}"),
            PersistError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: stored {expected:#x}, computed {actual:#x}")
            }
            PersistError::Malformed(m) => write!(f, "malformed model file: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// FNV-1a, the integrity (not security) checksum of the format.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// A writer that checksums everything passing through it.
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter { inner, hash: Fnv1a::new() }
    }

    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_f64(&mut self, v: f64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_f64_slice(&mut self, vs: &[f64]) -> io::Result<()> {
        for &v in vs {
            self.put_f64(v)?;
        }
        Ok(())
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }
}

/// A reader that checksums everything passing through it.
struct HashingReader<R: Read> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader { inner, hash: Fnv1a::new() }
    }

    fn get_u32(&mut self) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.get(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn get_u64(&mut self) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.get(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn get_f64(&mut self) -> Result<f64, PersistError> {
        let mut b = [0u8; 8];
        self.get(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    fn get_f64_vec(&mut self, len: usize) -> Result<Vec<f64>, PersistError> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    fn get(&mut self, buf: &mut [u8]) -> Result<(), PersistError> {
        self.inner.read_exact(buf)?;
        self.hash.update(buf);
        Ok(())
    }
}

/// Serialises a model to any writer.
///
/// ```
/// use csrplus_core::{persist, CsrPlusConfig, CsrPlusModel};
/// use csrplus_graph::{generators::figure1_graph, TransitionMatrix};
///
/// let t = TransitionMatrix::from_graph(&figure1_graph());
/// let model = CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3)).unwrap();
/// let mut buf = Vec::new();
/// persist::write_model(&model, &mut buf)?;
/// let loaded = persist::read_model(buf.as_slice())?;
/// assert_eq!(loaded.n(), 6);
/// # Ok::<(), csrplus_core::persist::PersistError>(())
/// ```
pub fn write_model<W: Write>(model: &CsrPlusModel, writer: W) -> Result<(), PersistError> {
    let mut w = HashingWriter::new(writer);
    w.inner.write_all(&MAGIC)?;
    w.put_u32(VERSION)?;
    let cfg = model.config();
    let (n, r) = (model.n(), model.rank());
    w.put_u64(n as u64)?;
    w.put_u64(r as u64)?;
    w.put_f64(cfg.damping)?;
    w.put_f64(cfg.epsilon)?;
    w.put_u64(cfg.oversample as u64)?;
    w.put_u64(cfg.power_iterations as u64)?;
    w.put_u64(cfg.seed)?;
    w.put_u64(match cfg.backend {
        crate::config::SvdBackend::Randomized => 0,
        crate::config::SvdBackend::Lanczos => 1,
    })?;
    w.put_f64_slice(model.sigma())?;
    w.put_f64_slice(model.u().as_slice())?;
    w.put_f64_slice(model.z().as_slice())?;
    w.put_f64_slice(model.p().as_slice())?;
    w.put_f64_slice(model.h0().as_slice())?;
    let crc = w.hash.0;
    w.inner.write_all(&crc.to_le_bytes())?;
    w.inner.flush()?;
    Ok(())
}

/// Deserialises a model from any reader (with integrity verification).
pub fn read_model<R: Read>(reader: R) -> Result<CsrPlusModel, PersistError> {
    let mut r = HashingReader::new(reader);
    let mut magic = [0u8; 4];
    r.inner.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let n = r.get_u64()? as usize;
    let rank = r.get_u64()? as usize;
    // Sanity bounds before allocating: a corrupt header must not OOM us.
    const MAX_ELEMENTS: usize = 1 << 36;
    if rank == 0 || rank > n || n.saturating_mul(rank) > MAX_ELEMENTS {
        return Err(PersistError::Malformed(format!("implausible sizes n={n} r={rank}")));
    }
    let damping = r.get_f64()?;
    let epsilon = r.get_f64()?;
    let oversample = r.get_u64()? as usize;
    let power_iterations = r.get_u64()? as usize;
    let seed = r.get_u64()?;
    let backend = match r.get_u64()? {
        0 => crate::config::SvdBackend::Randomized,
        1 => crate::config::SvdBackend::Lanczos,
        other => return Err(PersistError::Malformed(format!("unknown SVD backend tag {other}"))),
    };
    let sigma = r.get_f64_vec(rank)?;
    let u = r.get_f64_vec(n * rank)?;
    let z = r.get_f64_vec(n * rank)?;
    let p = r.get_f64_vec(rank * rank)?;
    let h0 = r.get_f64_vec(rank * rank)?;
    let actual = r.hash.0;
    let mut crc_bytes = [0u8; 8];
    r.inner.read_exact(&mut crc_bytes)?;
    let expected = u64::from_le_bytes(crc_bytes);
    if expected != actual {
        return Err(PersistError::ChecksumMismatch { expected, actual });
    }

    let mk = |rows: usize, cols: usize, data: Vec<f64>| -> Result<DenseMatrix, PersistError> {
        DenseMatrix::from_vec(rows, cols, data).map_err(|e| PersistError::Malformed(e.to_string()))
    };
    let config =
        CsrPlusConfig { damping, rank, epsilon, oversample, power_iterations, seed, backend };
    CsrPlusModel::from_parts(
        config,
        n,
        mk(n, rank, u)?,
        mk(n, rank, z)?,
        sigma,
        mk(rank, rank, p)?,
        mk(rank, rank, h0)?,
    )
    .map_err(|e: CoSimRankError| PersistError::Malformed(e.to_string()))
}

/// Saves a model to a file path.
pub fn save_model<P: AsRef<Path>>(model: &CsrPlusModel, path: P) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    write_model(model, io::BufWriter::new(file))
}

/// Loads a model from a file path.
pub fn load_model<P: AsRef<Path>>(path: P) -> Result<CsrPlusModel, PersistError> {
    let file = std::fs::File::open(path)?;
    read_model(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csrplus_graph::generators::figure1_graph;
    use csrplus_graph::TransitionMatrix;

    fn model() -> CsrPlusModel {
        let t = TransitionMatrix::from_graph(&figure1_graph());
        CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3)).unwrap()
    }

    #[test]
    fn round_trip_preserves_queries() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        let loaded = read_model(buf.as_slice()).unwrap();
        let a = m.multi_source(&[1, 3]).unwrap();
        let b = loaded.multi_source(&[1, 3]).unwrap();
        assert!(a.approx_eq(&b, 0.0), "loaded model must answer identically");
        assert_eq!(loaded.config(), m.config());
        assert_eq!(loaded.sigma(), m.sigma());
    }

    #[test]
    fn file_round_trip() {
        let m = model();
        let dir = std::env::temp_dir().join("csrplus_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.csrp");
        save_model(&m, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.n(), 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_model(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        buf.truncate(buf.len() - 12);
        let err = read_model(buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err}");
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let err = read_model(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, PersistError::ChecksumMismatch { .. } | PersistError::Malformed(_)),
            "{err}"
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        buf[4] = 99; // bump the version field
        let err = read_model(buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::UnsupportedVersion(_)), "{err}");
    }

    #[test]
    fn implausible_header_rejected_before_allocation() {
        // Hand-craft a header claiming n = u64::MAX.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CSRP");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        buf.extend_from_slice(&5u64.to_le_bytes()); // r
        buf.extend_from_slice(&[0u8; 64]); // enough trailing bytes
        let err = read_model(buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");
    }

    #[test]
    fn display_formats() {
        let e = PersistError::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(e.to_string().contains("checksum"));
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnsupportedVersion(7).to_string().contains("7"));
    }
}
