//! Binary persistence for precomputed CSR+ models.
//!
//! The whole point of the precompute/query split is to pay the SVD once;
//! this module makes the memoised state durable so a service can load a
//! model at startup and answer queries immediately.
//!
//! Two format versions share the `CSRP` magic:
//!
//! * **v2** (written by [`write_model`] / [`save_model`]) is the
//!   `csrplus-store` artifact layout: 64-byte-aligned little-endian
//!   sections behind a checksummed section table (see
//!   [`csrplus_store::format`]).  Sections: `meta` (u64 header fields),
//!   `sigma`/`u`/`z`/`p`/`h0` (the factors), and the derived pruning
//!   tables `zn.norm`/`zn.id`/`zs` so loads skip their `O(n·r)`
//!   recomputation.  v2 files can be *memory-mapped*: [`load_model`]
//!   borrows `U`/`Z` straight off the page cache (controlled by the
//!   `CSRPLUS_STORE` env var — `mmap`, `owned`, or `auto`), making
//!   time-to-first-query independent of model size.
//! * **v1** is the legacy streaming layout (header + raw f64 payloads +
//!   trailing FNV-1a).  v1 files still load — through the slow
//!   fully-deserialising path — and `csrplus pack` rewrites them as v2.
//!
//! The writer streams: payload bytes pass through fixed stack scratch
//! buffers with checksums folded in on the way, so saving never buffers
//! a payload and peak RSS stays O(1) in the model size (pinned by an
//! allocation-regression test).

use crate::config::CsrPlusConfig;
use crate::error::CoSimRankError;
use crate::factor::{DenseMatrixF32, Factor};
use crate::model::CsrPlusModel;
use crate::precision::Precision;
use csrplus_graph::partition::Reordering;
use csrplus_linalg::DenseMatrix;
use csrplus_store::{Artifact, ArtifactWriter, Backend, DType, StoreError};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"CSRP";
const VERSION_V1: u32 = 1;
const VERSION: u32 = 2;

/// Sanity bound on element counts before allocating: a corrupt header
/// must not OOM us.
const MAX_ELEMENTS: usize = 1 << 36;

/// Errors specific to model (de)serialisation.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a CSR+ model (bad magic).
    BadMagic,
    /// The file uses an unsupported format version.
    UnsupportedVersion(u32),
    /// The checksum did not match (truncation or corruption).
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The payload is internally inconsistent (e.g. absurd sizes).
    Malformed(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not a CSR+ model file (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(
                f,
                "unsupported model version {v}: rewrite the file as the current format \
                 with `csrplus pack <model> <out>` on a build that reads version {v}"
            ),
            PersistError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: stored {expected:#x}, computed {actual:#x}")
            }
            PersistError::Malformed(m) => write!(f, "malformed model file: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StoreError> for PersistError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(e) => PersistError::Io(e),
            StoreError::BadMagic => PersistError::BadMagic,
            StoreError::UnsupportedVersion(v) => PersistError::UnsupportedVersion(v),
            StoreError::ChecksumMismatch { expected, actual, .. } => {
                PersistError::ChecksumMismatch { expected, actual }
            }
            StoreError::Malformed(m) => PersistError::Malformed(m),
        }
    }
}

/// FNV-1a, the integrity (not security) checksum of the format.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// A writer that checksums everything passing through it (v1 format).
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter { inner, hash: Fnv1a::new() }
    }

    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_f64(&mut self, v: f64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_f64_slice(&mut self, vs: &[f64]) -> io::Result<()> {
        for &v in vs {
            self.put_f64(v)?;
        }
        Ok(())
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }
}

/// A reader that checksums everything passing through it (v1 format).
struct HashingReader<R: Read> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader { inner, hash: Fnv1a::new() }
    }

    fn get_u32(&mut self) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.get(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn get_u64(&mut self) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.get(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn get_f64(&mut self) -> Result<f64, PersistError> {
        let mut b = [0u8; 8];
        self.get(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    fn get_f64_vec(&mut self, len: usize) -> Result<Vec<f64>, PersistError> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    fn get(&mut self, buf: &mut [u8]) -> Result<(), PersistError> {
        self.inner.read_exact(buf)?;
        self.hash.update(buf);
        Ok(())
    }
}

fn backend_tag(backend: crate::config::SvdBackend) -> u64 {
    match backend {
        crate::config::SvdBackend::Randomized => 0,
        crate::config::SvdBackend::Lanczos => 1,
    }
}

fn backend_from_tag(tag: u64) -> Result<crate::config::SvdBackend, PersistError> {
    match tag {
        0 => Ok(crate::config::SvdBackend::Randomized),
        1 => Ok(crate::config::SvdBackend::Lanczos),
        other => Err(PersistError::Malformed(format!("unknown SVD backend tag {other}"))),
    }
}

/// Serialises a model to any writer in the current (v2, mmap-able)
/// format.
///
/// The payload streams through fixed stack buffers — nothing is
/// buffered, so saving a model allocates O(1) memory regardless of size.
///
/// ```
/// use csrplus_core::{persist, CsrPlusConfig, CsrPlusModel};
/// use csrplus_graph::{generators::figure1_graph, TransitionMatrix};
///
/// let t = TransitionMatrix::from_graph(&figure1_graph());
/// let model = CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3)).unwrap();
/// let mut buf = Vec::new();
/// persist::write_model(&model, &mut buf)?;
/// let loaded = persist::read_model(buf.as_slice())?;
/// assert_eq!(loaded.n(), 6);
/// # Ok::<(), csrplus_core::persist::PersistError>(())
/// ```
pub fn write_model<W: Write>(model: &CsrPlusModel, writer: W) -> Result<(), PersistError> {
    write_model_with_epoch(model, writer, 0)
}

/// [`write_model`] stamping an ingestion `epoch` into the artifact
/// header — how a live-updating server checkpoints a published snapshot
/// so a restart knows which model version the file holds.  Epoch 0
/// produces bytes identical to [`write_model`].
pub fn write_model_with_epoch<W: Write>(
    model: &CsrPlusModel,
    writer: W,
    epoch: u64,
) -> Result<(), PersistError> {
    let mut w = ArtifactWriter::with_epoch(writer, epoch)?;
    let cfg = model.config();
    let (n, r) = (model.n(), model.rank());
    w.section_u64s(
        "meta",
        &[
            n as u64,
            r as u64,
            cfg.oversample as u64,
            cfg.power_iterations as u64,
            cfg.seed,
            backend_tag(cfg.backend),
            cfg.damping.to_bits(),
            cfg.epsilon.to_bits(),
        ],
    )?;
    w.section_f64s("sigma", model.sigma())?;
    write_factor(&mut w, "u", model.u())?;
    write_factor(&mut w, "z", model.z())?;
    w.section_f64s("p", model.p().as_slice())?;
    w.section_f64s("h0", model.h0().as_slice())?;

    // Derived pruning tables, streamed through stack chunks so loads can
    // skip their O(n·r) recomputation without the writer materialising
    // columnar copies.
    let (z_norms_desc, z_split) = model.derived_tables();
    let mut f64s = [0f64; 512];
    let mut u32s = [0u32; 512];
    w.begin_section("zn.norm", DType::F64)?;
    for chunk in z_norms_desc.chunks(512) {
        for (slot, &(norm, _)) in f64s.iter_mut().zip(chunk.iter()) {
            *slot = norm;
        }
        w.put_f64s(&f64s[..chunk.len()])?;
    }
    w.end_section()?;
    w.begin_section("zn.id", DType::U32)?;
    for chunk in z_norms_desc.chunks(512) {
        for (slot, &(_, id)) in u32s.iter_mut().zip(chunk.iter()) {
            *slot = id;
        }
        w.put_u32s(&u32s[..chunk.len()])?;
    }
    w.end_section()?;
    w.begin_section("zs", DType::F64)?;
    for chunk in z_split.chunks(256) {
        let mut k = 0;
        for &(head, rest) in chunk {
            f64s[k] = head;
            f64s[k + 1] = rest;
            k += 2;
        }
        w.put_f64s(&f64s[..k])?;
    }
    w.end_section()?;
    // Node permutation (only when the model was built on a reordered
    // graph): `perm` holds `order[internal] = original` and `perm.meta`
    // the reordering strategy tag.  Absent sections mean identity, so
    // permutation-free artifacts stay byte-identical to older writers.
    if let Some(perm) = model.permutation() {
        w.begin_section("perm", DType::U32)?;
        for chunk in perm.order().chunks(512) {
            w.put_u32s(chunk)?;
        }
        w.end_section()?;
        w.section_u64s("perm.meta", &[perm.kind().tag()])?;
    }
    w.finish()?;
    Ok(())
}

/// Writes a dense factor section in its storage precision — the section
/// dtype (`F64` / `F32`) is what tells the loader which precision the
/// model was built with.
fn write_factor<W: Write>(
    w: &mut ArtifactWriter<W>,
    name: &str,
    f: &Factor,
) -> Result<(), PersistError> {
    match f.precision() {
        Precision::F64 => w.section_f64s(name, f.as_slice())?,
        Precision::F32 => w.section_f32s(name, f.as_f32_slice())?,
    }
    Ok(())
}

/// Serialises a model in the legacy v1 streaming format (kept for
/// migration tests and cross-version tooling; new files should use
/// [`write_model`]).
pub fn write_model_v1<W: Write>(model: &CsrPlusModel, writer: W) -> Result<(), PersistError> {
    if model.permutation().is_some() {
        // v1 has no place for the id mapping; silently dropping it would
        // make every answer come back in the wrong id space.
        return Err(PersistError::Malformed(
            "v1 format cannot carry a node permutation; save as v2 with write_model".into(),
        ));
    }
    let mut w = HashingWriter::new(writer);
    w.inner.write_all(&MAGIC)?;
    w.put_u32(VERSION_V1)?;
    let cfg = model.config();
    let (n, r) = (model.n(), model.rank());
    w.put_u64(n as u64)?;
    w.put_u64(r as u64)?;
    w.put_f64(cfg.damping)?;
    w.put_f64(cfg.epsilon)?;
    w.put_u64(cfg.oversample as u64)?;
    w.put_u64(cfg.power_iterations as u64)?;
    w.put_u64(cfg.seed)?;
    w.put_u64(backend_tag(cfg.backend))?;
    w.put_f64_slice(model.sigma())?;
    // v1 stays an f64-only format: f32-storage factors are widened on the
    // way out (lossless — every f32 is exactly representable in f64).
    put_factor_widened(&mut w, model.u())?;
    put_factor_widened(&mut w, model.z())?;
    w.put_f64_slice(model.p().as_slice())?;
    w.put_f64_slice(model.h0().as_slice())?;
    let crc = w.hash.0;
    w.inner.write_all(&crc.to_le_bytes())?;
    w.inner.flush()?;
    Ok(())
}

fn put_factor_widened<W: Write>(w: &mut HashingWriter<W>, f: &Factor) -> Result<(), PersistError> {
    match f.precision() {
        Precision::F64 => w.put_f64_slice(f.as_slice())?,
        Precision::F32 => {
            let mut buf = [0f64; 256];
            for chunk in f.as_f32_slice().chunks(256) {
                for (slot, &v) in buf.iter_mut().zip(chunk.iter()) {
                    *slot = f64::from(v);
                }
                w.put_f64_slice(&buf[..chunk.len()])?;
            }
        }
    }
    Ok(())
}

/// Deserialises a model from any reader, accepting both the current v2
/// artifact layout and legacy v1 files (with integrity verification —
/// reader-based loads always fully deserialise; use [`load_model`] for
/// the zero-copy mmap path).
pub fn read_model<R: Read>(mut reader: R) -> Result<CsrPlusModel, PersistError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut r = HashingReader::new(reader);
    let version = r.get_u32()?;
    match version {
        VERSION_V1 => read_model_v1_body(r),
        VERSION => {
            // Reassemble the full byte stream and hand it to the store's
            // eagerly-verifying parser.
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&magic);
            bytes.extend_from_slice(&VERSION.to_le_bytes());
            r.inner.read_to_end(&mut bytes)?;
            let artifact = Artifact::from_bytes(&bytes)?;
            model_from_artifact(&artifact)
        }
        other => Err(PersistError::UnsupportedVersion(other)),
    }
}

/// The v1 body (everything after the version field), `r`'s hash already
/// primed with the version bytes as the v1 checksum expects.
fn read_model_v1_body<R: Read>(mut r: HashingReader<R>) -> Result<CsrPlusModel, PersistError> {
    let n = r.get_u64()? as usize;
    let rank = r.get_u64()? as usize;
    if rank == 0 || rank > n || n.saturating_mul(rank) > MAX_ELEMENTS {
        return Err(PersistError::Malformed(format!("implausible sizes n={n} r={rank}")));
    }
    let damping = r.get_f64()?;
    let epsilon = r.get_f64()?;
    let oversample = r.get_u64()? as usize;
    let power_iterations = r.get_u64()? as usize;
    let seed = r.get_u64()?;
    let backend = backend_from_tag(r.get_u64()?)?;
    let sigma = r.get_f64_vec(rank)?;
    let u = r.get_f64_vec(n * rank)?;
    let z = r.get_f64_vec(n * rank)?;
    let p = r.get_f64_vec(rank * rank)?;
    let h0 = r.get_f64_vec(rank * rank)?;
    let actual = r.hash.0;
    let mut crc_bytes = [0u8; 8];
    r.inner.read_exact(&mut crc_bytes)?;
    let expected = u64::from_le_bytes(crc_bytes);
    if expected != actual {
        return Err(PersistError::ChecksumMismatch { expected, actual });
    }

    let mk = |rows: usize, cols: usize, data: Vec<f64>| -> Result<DenseMatrix, PersistError> {
        DenseMatrix::from_vec(rows, cols, data).map_err(|e| PersistError::Malformed(e.to_string()))
    };
    let config =
        CsrPlusConfig { damping, rank, epsilon, oversample, power_iterations, seed, backend };
    CsrPlusModel::from_parts(
        config,
        n,
        mk(n, rank, u)?,
        mk(n, rank, z)?,
        sigma,
        mk(rank, rank, p)?,
        mk(rank, rank, h0)?,
    )
    .map_err(|e: CoSimRankError| PersistError::Malformed(e.to_string()))
}

/// Builds a model from a parsed v2 artifact.  Owned artifacts decode the
/// factors into heap buffers; mapped artifacts borrow `U` and `Z`
/// zero-copy, leaving their pages untouched until the first query.
pub fn model_from_artifact(artifact: &Artifact) -> Result<CsrPlusModel, PersistError> {
    let meta = artifact.decode_u64s("meta")?;
    if meta.len() != 8 {
        return Err(PersistError::Malformed(format!(
            "meta section has {} fields, expected 8",
            meta.len()
        )));
    }
    let n = meta[0] as usize;
    let rank = meta[1] as usize;
    if rank == 0 || rank > n || n.saturating_mul(rank) > MAX_ELEMENTS {
        return Err(PersistError::Malformed(format!("implausible sizes n={n} r={rank}")));
    }
    let config = CsrPlusConfig {
        damping: f64::from_bits(meta[6]),
        rank,
        epsilon: f64::from_bits(meta[7]),
        oversample: meta[2] as usize,
        power_iterations: meta[3] as usize,
        seed: meta[4],
        backend: backend_from_tag(meta[5])?,
    };
    let sigma = artifact.decode_f64s("sigma")?;
    if sigma.len() != rank {
        return Err(PersistError::Malformed(format!(
            "sigma holds {} values, expected rank {rank}",
            sigma.len()
        )));
    }
    let mk = |rows: usize, cols: usize, data: Vec<f64>| -> Result<DenseMatrix, PersistError> {
        DenseMatrix::from_vec(rows, cols, data).map_err(|e| PersistError::Malformed(e.to_string()))
    };
    let p = mk(rank, rank, artifact.decode_f64s("p")?)?;
    let h0 = mk(rank, rank, artifact.decode_f64s("h0")?)?;
    // Derived pruning tables (O(n), small next to the n·r factors).
    let norms = artifact.decode_f64s("zn.norm")?;
    let ids = artifact.decode_u32s("zn.id")?;
    let zs = artifact.decode_f64s("zs")?;
    if norms.len() != n || ids.len() != n || zs.len() != 2 * n {
        return Err(PersistError::Malformed("derived table lengths disagree with n".into()));
    }
    if ids.iter().any(|&id| id as usize >= n.max(1)) {
        return Err(PersistError::Malformed("zn.id entry out of range".into()));
    }
    let z_norms_desc: Vec<(f64, u32)> = norms.into_iter().zip(ids).collect();
    let z_split: Vec<(f64, f64)> = zs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    // The big factors: zero-copy off a mapped region, owned otherwise.
    // The section dtype — not any process-global setting — decides the
    // in-memory precision, so a file always loads the way it was built.
    let f32_factors = match artifact.section("u") {
        Some(s) => s.dtype == DType::F32,
        None => false,
    };
    let mk32 = |rows: usize, cols: usize, data: Vec<f32>| -> Result<DenseMatrixF32, PersistError> {
        DenseMatrixF32::from_vec(rows, cols, data)
            .map_err(|e| PersistError::Malformed(e.to_string()))
    };
    let (u, z) = match (artifact.is_mapped(), f32_factors) {
        (true, false) => (
            Factor::Mapped(artifact.matrix("u", n, rank)?),
            Factor::Mapped(artifact.matrix("z", n, rank)?),
        ),
        (true, true) => (
            Factor::MappedF32(artifact.matrix_f32("u", n, rank)?),
            Factor::MappedF32(artifact.matrix_f32("z", n, rank)?),
        ),
        (false, false) => (
            Factor::Owned(mk(n, rank, artifact.decode_f64s("u")?)?),
            Factor::Owned(mk(n, rank, artifact.decode_f64s("z")?)?),
        ),
        (false, true) => (
            Factor::OwnedF32(mk32(n, rank, artifact.decode_f32s("u")?)?),
            Factor::OwnedF32(mk32(n, rank, artifact.decode_f32s("z")?)?),
        ),
    };
    let model = CsrPlusModel::from_factors_with_tables(
        config,
        n,
        u,
        z,
        sigma,
        p,
        h0,
        z_norms_desc,
        z_split,
    )
    .map_err(|e: CoSimRankError| PersistError::Malformed(e.to_string()))?;
    // Optional node permutation (reordered-graph artifacts).
    match artifact.section("perm") {
        None => Ok(model),
        Some(_) => {
            let order = artifact.decode_u32s("perm")?;
            let meta = artifact.decode_u64s("perm.meta")?;
            let &[tag] = meta.as_slice() else {
                return Err(PersistError::Malformed(format!(
                    "perm.meta has {} fields, expected 1",
                    meta.len()
                )));
            };
            let kind = Reordering::from_tag(tag)
                .ok_or_else(|| PersistError::Malformed(format!("unknown reordering tag {tag}")))?;
            model.with_permutation(order, kind).map_err(|e| PersistError::Malformed(e.to_string()))
        }
    }
}

/// Saves a model to a file path (v2 format, streaming).
pub fn save_model<P: AsRef<Path>>(model: &CsrPlusModel, path: P) -> Result<(), PersistError> {
    save_model_with_epoch(model, path, 0)
}

/// [`save_model`] stamping an ingestion `epoch` into the artifact header
/// (see [`write_model_with_epoch`]).
pub fn save_model_with_epoch<P: AsRef<Path>>(
    model: &CsrPlusModel,
    path: P,
    epoch: u64,
) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    write_model_with_epoch(model, io::BufWriter::new(file), epoch)
}

/// Reads the ingestion epoch stamped in a v2 artifact's header without
/// loading the model (v1 files and default v2 files report 0).
pub fn saved_epoch<P: AsRef<Path>>(path: P) -> Result<u64, PersistError> {
    let mut head = [0u8; 16];
    let mut f = std::fs::File::open(path)?;
    f.read_exact(&mut head)?;
    if head[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    match u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")) {
        VERSION_V1 => Ok(0),
        VERSION => Ok(u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"))),
        other => Err(PersistError::UnsupportedVersion(other)),
    }
}

/// Loads a model from a file path with the backend chosen by the
/// `CSRPLUS_STORE` environment variable (`mmap`, `owned`, or `auto`).
///
/// v2 files honour the backend — under `mmap` (the `auto` default on
/// Unix) the dense factors are borrowed from the page cache and
/// time-to-first-query is independent of model size.  v1 files take the
/// legacy fully-deserialising path; repack them with `csrplus pack`.
pub fn load_model<P: AsRef<Path>>(path: P) -> Result<CsrPlusModel, PersistError> {
    load_model_with(path, Backend::from_env())
}

/// [`load_model`] with an explicit [`Backend`] choice.
pub fn load_model_with<P: AsRef<Path>>(
    path: P,
    backend: Backend,
) -> Result<CsrPlusModel, PersistError> {
    let path = path.as_ref();
    // Sniff the version to route v1 files to the legacy reader.
    let mut head = [0u8; 8];
    {
        let mut f = std::fs::File::open(path)?;
        f.read_exact(&mut head)?;
    }
    if head[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    match u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")) {
        VERSION_V1 => {
            let file = std::fs::File::open(path)?;
            read_model(io::BufReader::new(file))
        }
        VERSION => {
            let artifact = Artifact::open(path, backend)?;
            model_from_artifact(&artifact)
        }
        other => Err(PersistError::UnsupportedVersion(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csrplus_graph::generators::figure1_graph;
    use csrplus_graph::TransitionMatrix;

    fn model() -> CsrPlusModel {
        let t = TransitionMatrix::from_graph(&figure1_graph());
        CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3)).unwrap()
    }

    #[test]
    fn round_trip_preserves_queries() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        let loaded = read_model(buf.as_slice()).unwrap();
        let a = m.multi_source(&[1, 3]).unwrap();
        let b = loaded.multi_source(&[1, 3]).unwrap();
        assert!(a.approx_eq(&b, 0.0), "loaded model must answer identically");
        assert_eq!(loaded.config(), m.config());
        assert_eq!(loaded.sigma(), m.sigma());
    }

    #[test]
    fn v1_files_still_load() {
        let m = model();
        let mut buf = Vec::new();
        write_model_v1(&m, &mut buf).unwrap();
        let loaded = read_model(buf.as_slice()).unwrap();
        let a = m.multi_source(&[1, 3]).unwrap();
        let b = loaded.multi_source(&[1, 3]).unwrap();
        assert!(a.approx_eq(&b, 0.0), "v1 model must answer identically");
        assert_eq!(loaded.config(), m.config());
        // And re-saving goes out as v2 — the `pack` migration.
        let mut repacked = Vec::new();
        write_model(&loaded, &mut repacked).unwrap();
        assert_eq!(u32::from_le_bytes(repacked[4..8].try_into().unwrap()), VERSION);
        let re = read_model(repacked.as_slice()).unwrap();
        assert!(re.multi_source(&[1, 3]).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn file_round_trip() {
        let m = model();
        let dir = std::env::temp_dir().join("csrplus_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.csrp");
        save_model(&m, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.n(), 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn epoch_stamped_checkpoints_round_trip() {
        let m = model();
        let dir = std::env::temp_dir().join("csrplus_persist_test_epoch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.csrp");
        save_model(&m, &path).unwrap();
        assert_eq!(saved_epoch(&path).unwrap(), 0);
        save_model_with_epoch(&m, &path, 17).unwrap();
        assert_eq!(saved_epoch(&path).unwrap(), 17);
        // An epoch-stamped checkpoint is still an ordinary loadable model.
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.n(), 6);
        // And a zero-epoch write is byte-identical to the default writer.
        let mut plain = Vec::new();
        let mut zeroed = Vec::new();
        write_model(&m, &mut plain).unwrap();
        write_model_with_epoch(&m, &mut zeroed, 0).unwrap();
        assert_eq!(plain, zeroed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_and_owned_loads_answer_bitwise_identically() {
        let m = model();
        let dir = std::env::temp_dir().join("csrplus_persist_test_mmap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.csrp");
        save_model(&m, &path).unwrap();
        let owned = load_model_with(&path, Backend::Owned).unwrap();
        let mapped = load_model_with(&path, Backend::Mmap).unwrap();
        if cfg!(unix) {
            assert!(mapped.is_mapped(), "mmap backend must map on unix");
        }
        assert!(!owned.is_mapped());
        assert_eq!(owned.u().as_slice(), mapped.u().as_slice());
        assert_eq!(owned.z().as_slice(), mapped.z().as_slice());
        let a = owned.multi_source(&[1, 3]).unwrap();
        let b = mapped.multi_source(&[1, 3]).unwrap();
        assert!(a.approx_eq(&b, 0.0), "mapped answers must be bitwise identical");
        // Derived tables were persisted, not recomputed: they match too.
        assert_eq!(owned.derived_tables().0, mapped.derived_tables().0);
        assert_eq!(owned.derived_tables().1, mapped.derived_tables().1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn permutation_round_trips_through_v2() {
        let m = model().with_permutation(vec![5, 3, 0, 1, 4, 2], Reordering::Rcm).unwrap();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        let loaded = read_model(buf.as_slice()).unwrap();
        let p = loaded.permutation().expect("permutation survives the round trip");
        assert_eq!(p.kind(), Reordering::Rcm);
        assert_eq!(p.order(), &[5, 3, 0, 1, 4, 2]);
        let a = m.multi_source(&[1, 3]).unwrap();
        let b = loaded.multi_source(&[1, 3]).unwrap();
        assert!(a.approx_eq(&b, 0.0), "permuted model must answer identically after reload");
        assert_eq!(m.top_k_pruned(0, 3).unwrap(), loaded.top_k_pruned(0, 3).unwrap());
        // Mapped and owned loads agree on the permuted model too.
        let dir = std::env::temp_dir().join("csrplus_persist_test_perm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.csrp");
        save_model(&m, &path).unwrap();
        let mapped = load_model_with(&path, Backend::Mmap).unwrap();
        assert_eq!(mapped.permutation().unwrap().order(), p.order());
        assert!(mapped.multi_source(&[1, 3]).unwrap().approx_eq(&a, 0.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_writer_rejects_permuted_models() {
        let m = model().with_permutation(vec![5, 3, 0, 1, 4, 2], Reordering::Rcm).unwrap();
        let err = write_model_v1(&m, Vec::new()).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("permutation"), "{err}");
    }

    #[test]
    fn identity_models_write_no_perm_section() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        let artifact = Artifact::from_bytes(&buf).unwrap();
        assert!(artifact.section("perm").is_none());
        assert!(artifact.section("perm.meta").is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_model(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        buf.truncate(buf.len() - 12);
        let err = read_model(buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::Io(_)
                    | PersistError::Malformed(_)
                    | PersistError::ChecksumMismatch { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let err = read_model(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, PersistError::ChecksumMismatch { .. } | PersistError::Malformed(_)),
            "{err}"
        );
    }

    #[test]
    fn wrong_version_rejected_with_repack_hint() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        buf[4] = 99; // bump the version field
        let err = read_model(buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::UnsupportedVersion(_)), "{err}");
        assert!(err.to_string().contains("csrplus pack"), "{err}");
    }

    #[test]
    fn implausible_header_rejected_before_allocation() {
        // Hand-craft a v1 header claiming n = u64::MAX.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CSRP");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        buf.extend_from_slice(&5u64.to_le_bytes()); // r
        buf.extend_from_slice(&[0u8; 64]); // enough trailing bytes
        let err = read_model(buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");
    }

    #[test]
    fn display_formats() {
        let e = PersistError::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(e.to_string().contains("checksum"));
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnsupportedVersion(7).to_string().contains("7"));
    }
}
