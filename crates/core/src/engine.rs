//! The common interface every CoSimRank algorithm implements.
//!
//! The bench harness treats CSR+ and all baselines uniformly: build an
//! engine, run `precompute`, then run `multi_source` any number of times.
//! Engines own their memoised state; both phases can fail with a
//! "memory crash" ([`crate::CoSimRankError::MemoryLimit`]) when the
//! configured budget would be exceeded, mirroring how the paper's larger
//! configurations kill the baselines.

use crate::error::CoSimRankError;
use crate::model::CsrPlusModel;
use crate::CsrPlusConfig;
use csrplus_graph::TransitionMatrix;
use csrplus_linalg::DenseMatrix;
use csrplus_memtrack::MemoryBudget;

/// Outcome classification used by the harness when tabulating figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineOutcome {
    /// Ran to completion.
    Completed,
    /// Hit the memory budget (the paper's "memory crash").
    MemoryCrash,
    /// Failed for another reason.
    Failed,
}

/// A two-phase multi-source CoSimRank algorithm.
pub trait CoSimRankEngine {
    /// Short display name, e.g. `"CSR+"` or `"CSR-NI"`.
    fn name(&self) -> &'static str;

    /// One-off preprocessing over the graph.  May be a no-op for purely
    /// online algorithms.
    fn precompute(&mut self, t: &TransitionMatrix) -> Result<(), CoSimRankError>;

    /// Answers `[S]_{*,Q}`; requires `precompute` to have succeeded.
    fn multi_source(&self, queries: &[usize]) -> Result<DenseMatrix, CoSimRankError>;

    /// Measured bytes held by the memoised state after `precompute`.
    fn memoised_bytes(&self) -> usize {
        0
    }
}

/// [`CoSimRankEngine`] implementation for CSR+ itself.
#[derive(Debug, Clone)]
pub struct CsrPlusEngine {
    config: CsrPlusConfig,
    model: Option<CsrPlusModel>,
}

impl CsrPlusEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: CsrPlusConfig) -> Self {
        CsrPlusEngine { config, model: None }
    }

    /// Access to the underlying model once precomputed.
    pub fn model(&self) -> Option<&CsrPlusModel> {
        self.model.as_ref()
    }

    /// The configured memory budget does not constrain CSR+ in any paper
    /// experiment (its state is `O(rn)`), but expose a budgeted all-pairs
    /// for parity with baselines.
    pub fn all_pairs(&self, budget: &MemoryBudget) -> Result<DenseMatrix, CoSimRankError> {
        self.model.as_ref().ok_or(CoSimRankError::NotPrecomputed)?.all_pairs(budget)
    }
}

impl CoSimRankEngine for CsrPlusEngine {
    fn name(&self) -> &'static str {
        "CSR+"
    }

    fn precompute(&mut self, t: &TransitionMatrix) -> Result<(), CoSimRankError> {
        self.model = Some(CsrPlusModel::precompute(t, &self.config)?);
        Ok(())
    }

    fn multi_source(&self, queries: &[usize]) -> Result<DenseMatrix, CoSimRankError> {
        self.model.as_ref().ok_or(CoSimRankError::NotPrecomputed)?.multi_source(queries)
    }

    fn memoised_bytes(&self) -> usize {
        self.model.as_ref().map_or(0, CsrPlusModel::heap_bytes)
    }
}

/// Classifies an engine `Result` for figure tabulation.
pub fn classify<T>(result: &Result<T, CoSimRankError>) -> EngineOutcome {
    match result {
        Ok(_) => EngineOutcome::Completed,
        Err(e) if e.is_memory_crash() => EngineOutcome::MemoryCrash,
        Err(_) => EngineOutcome::Failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csrplus_graph::generators::figure1_graph;

    #[test]
    fn engine_lifecycle() {
        let t = TransitionMatrix::from_graph(&figure1_graph());
        let mut e = CsrPlusEngine::new(CsrPlusConfig::with_rank(3));
        // Query before precompute is a structured error.
        assert!(matches!(e.multi_source(&[0]), Err(CoSimRankError::NotPrecomputed)));
        assert_eq!(e.memoised_bytes(), 0);
        e.precompute(&t).unwrap();
        let s = e.multi_source(&[1, 3]).unwrap();
        assert_eq!(s.shape(), (6, 2));
        assert!(e.memoised_bytes() > 0);
        assert_eq!(e.name(), "CSR+");
    }

    #[test]
    fn classify_outcomes() {
        let ok: Result<(), CoSimRankError> = Ok(());
        assert_eq!(classify(&ok), EngineOutcome::Completed);
        let crash: Result<(), CoSimRankError> =
            Err(csrplus_memtrack::MemoryLimitError { what: "x".into(), required: 2, budget: 1 }
                .into());
        assert_eq!(classify(&crash), EngineOutcome::MemoryCrash);
        let other: Result<(), CoSimRankError> = Err(CoSimRankError::NotPrecomputed);
        assert_eq!(classify(&other), EngineOutcome::Failed);
    }

    #[test]
    fn engine_matches_model_directly() {
        let t = TransitionMatrix::from_graph(&figure1_graph());
        let cfg = CsrPlusConfig::with_rank(3);
        let mut e = CsrPlusEngine::new(cfg);
        e.precompute(&t).unwrap();
        let direct = CsrPlusModel::precompute(&t, &cfg).unwrap();
        let s1 = e.multi_source(&[2]).unwrap();
        let s2 = direct.multi_source(&[2]).unwrap();
        assert!(s1.approx_eq(&s2, 1e-12));
    }
}
