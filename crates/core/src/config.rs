//! CSR+ configuration and iteration-count bounds.

use crate::error::CoSimRankError;
use csrplus_linalg::lanczos::LanczosSvdConfig;
use csrplus_linalg::randomized::RandomizedSvdConfig;

/// Which truncated-SVD algorithm powers line 2 of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SvdBackend {
    /// Randomized subspace iteration (Halko et al.) — the default; best
    /// throughput on decaying spectra (few passes over the graph).
    #[default]
    Randomized,
    /// Golub–Kahan–Lanczos bidiagonalisation (the `svds` family) — more
    /// reliable extreme triples on flat spectra, strictly sequential.
    Lanczos,
}

/// Parameters of Algorithm 1 (plus randomized-SVD knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsrPlusConfig {
    /// Damping factor `c ∈ (0, 1)`; the paper defaults to 0.6.
    pub damping: f64,
    /// Target low rank `r ≪ n`; the paper defaults to 5.
    pub rank: usize,
    /// Desired accuracy `ε` for the subspace fixed point (default 1e-5).
    pub epsilon: f64,
    /// Randomized-SVD oversampling (extra sketch columns).
    pub oversample: usize,
    /// Randomized-SVD power iterations.
    pub power_iterations: usize,
    /// RNG seed for the sketch — runs are deterministic given it.
    pub seed: u64,
    /// Which truncated-SVD algorithm to use.
    pub backend: SvdBackend,
}

impl Default for CsrPlusConfig {
    fn default() -> Self {
        CsrPlusConfig {
            damping: 0.6,
            rank: 5,
            epsilon: 1e-5,
            oversample: 8,
            power_iterations: 2,
            seed: 0xC0_51_31,
            backend: SvdBackend::Randomized,
        }
    }
}

impl CsrPlusConfig {
    /// Convenience: default config at a specific rank.
    pub fn with_rank(rank: usize) -> Self {
        CsrPlusConfig { rank, ..Default::default() }
    }

    /// Validates ranges; `n` is the graph size (bounds the rank).
    pub fn validate(&self, n: usize) -> Result<(), CoSimRankError> {
        if !(self.damping > 0.0 && self.damping < 1.0) {
            return Err(CoSimRankError::InvalidConfig {
                message: format!("damping {} not in (0,1)", self.damping),
            });
        }
        if self.rank == 0 || self.rank > n {
            return Err(CoSimRankError::InvalidConfig {
                message: format!("rank {} not in 1..={n}", self.rank),
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(CoSimRankError::InvalidConfig {
                message: format!("epsilon {} not in (0,1)", self.epsilon),
            });
        }
        Ok(())
    }

    /// Number of repeated-squaring iterations of Algorithm 1 lines 4–5:
    /// `max{0, ⌊log₂ log_c ε⌋} + 1`, which guarantees
    /// `‖P_k − P‖_max < ε` (the doubling covers `c^(2^k − 1)` terms).
    pub fn squaring_iterations(&self) -> usize {
        squaring_iterations(self.damping, self.epsilon)
    }

    /// Number of plain (linear) fixed-point iterations achieving the same
    /// `ε` truncation: the smallest `K` with `c^{K+1}/(1−c) < ε`.  Used by
    /// the exact reference and by iterative baselines.
    pub fn linear_iterations(&self) -> usize {
        linear_iterations(self.damping, self.epsilon)
    }

    /// The `RandomizedSvdConfig` equivalent of this config.
    pub fn svd_config(&self) -> RandomizedSvdConfig {
        RandomizedSvdConfig {
            rank: self.rank,
            oversample: self.oversample,
            power_iterations: self.power_iterations,
            seed: self.seed,
        }
    }

    /// The `LanczosSvdConfig` equivalent of this config (`oversample`
    /// doubles as the extra-step padding).
    pub fn lanczos_config(&self) -> LanczosSvdConfig {
        LanczosSvdConfig { rank: self.rank, extra_steps: self.oversample.max(8), seed: self.seed }
    }
}

/// `max{0, ⌊log₂ log_c ε⌋} + 1` (Algorithm 1 line 4).
pub fn squaring_iterations(c: f64, eps: f64) -> usize {
    debug_assert!(c > 0.0 && c < 1.0 && eps > 0.0 && eps < 1.0);
    let log_c_eps = eps.ln() / c.ln(); // > 0
    let l2 = log_c_eps.log2().floor();
    let bounded = if l2 > 0.0 { l2 as usize } else { 0 };
    bounded + 1
}

/// Smallest `K` such that the geometric tail `c^{K+1}/(1−c) < ε`.
pub fn linear_iterations(c: f64, eps: f64) -> usize {
    debug_assert!(c > 0.0 && c < 1.0 && eps > 0.0 && eps < 1.0);
    // k+1 > log_c(ε(1−c)); start from the analytic estimate and adjust to
    // the exact minimum (floating-point boundary cases).
    let t = (eps * (1.0 - c)).ln() / c.ln(); // > 0
    let mut k = (t - 1.0).max(0.0).floor() as usize;
    while c.powi(k as i32 + 1) / (1.0 - c) >= eps {
        k += 1;
    }
    while k > 0 && c.powi(k as i32) / (1.0 - c) < eps {
        k -= 1;
    }
    k.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CsrPlusConfig::default();
        assert_eq!(c.damping, 0.6);
        assert_eq!(c.rank, 5);
        assert_eq!(c.epsilon, 1e-5);
        assert!(c.validate(100).is_ok());
    }

    #[test]
    fn squaring_count_for_paper_defaults() {
        // log_0.6(1e-5) ≈ 22.54 → log2 ≈ 4.49 → ⌊·⌋ = 4 → +1 = 5.
        assert_eq!(squaring_iterations(0.6, 1e-5), 5);
        // With c = 0.8: log_0.8(1e-5) ≈ 51.6 → log2 ≈ 5.69 → 5 → 6.
        assert_eq!(squaring_iterations(0.8, 1e-5), 6);
        // Loose ε where log_c ε < 2 → bound 0 → one iteration.
        assert_eq!(squaring_iterations(0.6, 0.5), 1);
    }

    #[test]
    fn squaring_covers_linear_terms() {
        // After k squarings the doubled expansion contains 2^k geometric
        // terms; that must dominate the linear iteration count.
        for &(c, eps) in &[(0.6, 1e-5), (0.8, 1e-8), (0.5, 1e-3)] {
            let k = squaring_iterations(c, eps);
            let lin = linear_iterations(c, eps);
            assert!((1usize << k) >= lin, "c={c} eps={eps}: 2^{k} < {lin} linear terms");
        }
    }

    #[test]
    fn linear_iterations_bound_tail() {
        let c = 0.6;
        let eps = 1e-5;
        let k = linear_iterations(c, eps);
        let tail = c.powi(k as i32 + 1) / (1.0 - c);
        assert!(tail < eps, "tail {tail} >= {eps}");
        // One fewer iteration must NOT satisfy the bound (minimality).
        let tail_prev = c.powi(k as i32) / (1.0 - c);
        assert!(tail_prev >= eps);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let bad = [
            CsrPlusConfig { damping: 1.0, ..Default::default() },
            CsrPlusConfig { rank: 0, ..Default::default() },
            CsrPlusConfig { rank: 11, ..Default::default() },
            CsrPlusConfig { epsilon: 0.0, ..Default::default() },
        ];
        for c in bad {
            assert!(c.validate(10).is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn svd_config_mirrors_fields() {
        let c = CsrPlusConfig {
            rank: 7,
            oversample: 3,
            power_iterations: 4,
            seed: 9,
            ..Default::default()
        };
        let s = c.svd_config();
        assert_eq!(s.rank, 7);
        assert_eq!(s.oversample, 3);
        assert_eq!(s.power_iterations, 4);
        assert_eq!(s.seed, 9);
    }
}
