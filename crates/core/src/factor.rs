//! Dense factor storage that is either owned or memory-mapped.
//!
//! The model's large factors (`U`, `Z`, both `n × r`) dominate its
//! footprint.  [`Factor`] lets them live either in owned heap buffers
//! (computed fresh, or eagerly deserialised) or borrowed zero-copy from
//! a mapped `CSRP` v2 artifact — the query paths only ever consume rows,
//! slices and [`MatView`]s, all of which both representations provide
//! with identical bit patterns.

use csrplus_linalg::{DenseMatrix, MatView};
use csrplus_store::MappedMatrix;

/// An `n × r` dense factor: owned heap storage or a zero-copy window
/// into a mapped artifact.
#[derive(Debug, Clone)]
pub enum Factor {
    /// Owned row-major storage.
    Owned(DenseMatrix),
    /// Borrowed from a shared mapped region (page-cache backed).
    Mapped(MappedMatrix),
}

impl Factor {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            Factor::Owned(m) => m.rows(),
            Factor::Mapped(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            Factor::Owned(m) => m.cols(),
            Factor::Mapped(m) => m.cols(),
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// The factor as a flat row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        match self {
            Factor::Owned(m) => m.as_slice(),
            Factor::Mapped(m) => m.as_slice(),
        }
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        match self {
            Factor::Owned(m) => m.row(i),
            Factor::Mapped(m) => m.row(i),
        }
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            Factor::Owned(m) => m.get(i, j),
            Factor::Mapped(m) => m.get(i, j),
        }
    }

    /// A borrowing view — the common currency of the compute kernels, so
    /// downstream products are bitwise identical across representations.
    pub fn view(&self) -> MatView<'_> {
        match self {
            Factor::Owned(m) => m.view(),
            Factor::Mapped(m) => m.view(),
        }
    }

    /// Gathers the given rows into a fresh owned matrix.
    pub fn select_rows(&self, rows: &[usize]) -> DenseMatrix {
        match self {
            Factor::Owned(m) => m.select_rows(rows),
            Factor::Mapped(m) => {
                let cols = m.cols();
                let mut data = Vec::with_capacity(rows.len() * cols);
                for &i in rows {
                    data.extend_from_slice(m.row(i));
                }
                DenseMatrix::from_vec(rows.len(), cols, data).expect("consistent shape")
            }
        }
    }

    /// An owned copy (materialises mapped storage).
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            Factor::Owned(m) => m.clone(),
            Factor::Mapped(m) => DenseMatrix::from_vec(m.rows(), m.cols(), m.as_slice().to_vec())
                .expect("consistent shape"),
        }
    }

    /// True when the factor borrows mapped (page-cache) storage.
    pub fn is_mapped(&self) -> bool {
        matches!(self, Factor::Mapped(_))
    }

    /// Heap bytes owned by this factor — zero for mapped storage, whose
    /// pages belong to the kernel page cache, not this process's heap.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Factor::Owned(m) => m.heap_bytes(),
            Factor::Mapped(_) => 0,
        }
    }
}

impl From<DenseMatrix> for Factor {
    fn from(m: DenseMatrix) -> Self {
        Factor::Owned(m)
    }
}
