//! Dense factor storage that is either owned or memory-mapped, in
//! either storage precision.
//!
//! The model's large factors (`U`, `Z`, both `n × r`) dominate its
//! footprint.  [`Factor`] lets them live in owned heap buffers (computed
//! fresh, or eagerly deserialised) or borrowed zero-copy from a mapped
//! `CSRP` v2 artifact — and, orthogonally, in `f64` or `f32` storage
//! (see [`crate::precision`]).  The query paths only ever consume rows
//! ([`RowRef`]) and views ([`FactorView`]); every kernel accumulates in
//! `f64` regardless of storage, and within a precision the bit patterns
//! are identical across representations.

use csrplus_linalg::{DenseMatrix, LinalgError, MatView};
use csrplus_store::{MappedMatrix, MappedMatrixF32};

/// An owned row-major `f32` matrix — the storage-demoted counterpart of
/// [`DenseMatrix`], carrying no arithmetic of its own: kernels consume
/// its [`MatView<f32>`] and widen per element.
#[derive(Debug, Clone)]
pub struct DenseMatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrixF32 {
    /// Builds from a row-major buffer.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `data.len() != rows·cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                context: "DenseMatrixF32::from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(DenseMatrixF32 { rows, cols, data })
    }

    /// Rounds an `f64` matrix to `f32` storage (the demotion step).
    pub fn from_f64(m: &DenseMatrix) -> Self {
        DenseMatrixF32 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The matrix as a flat row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A borrowing view over the storage.
    pub fn view(&self) -> MatView<'_, f32> {
        MatView::new(&self.data, self.rows, self.cols, self.cols.max(1), 1)
            .expect("owned buffer always fits its own shape")
    }

    /// Heap bytes owned by the buffer.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }
}

/// A borrowed factor row in its storage precision.
///
/// The accessors widen to `f64` with the same fixed accumulation order
/// as the `f64` kernels, so per-precision results are bitwise stable
/// across owned/mapped representations and thread caps.
#[derive(Debug, Clone, Copy)]
pub enum RowRef<'a> {
    /// Double-precision storage.
    F64(&'a [f64]),
    /// Single-precision storage (widened per element on use).
    F32(&'a [f32]),
}

impl<'a> RowRef<'a> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            RowRef::F64(s) => s.len(),
            RowRef::F32(s) => s.len(),
        }
    }

    /// True when the row has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element `j`, widened.
    #[inline]
    pub fn get(&self, j: usize) -> f64 {
        match self {
            RowRef::F64(s) => s[j],
            RowRef::F32(s) => s[j] as f64,
        }
    }

    /// First element widened, or 0 for an empty row.
    #[inline]
    pub fn first(&self) -> f64 {
        match self {
            RowRef::F64(s) => s.first().copied().unwrap_or(0.0),
            RowRef::F32(s) => s.first().copied().unwrap_or(0.0) as f64,
        }
    }

    /// Dot product against another row of the *same* precision,
    /// accumulated in `f64` with the shared fixed-lane kernels.
    ///
    /// # Panics
    /// Panics on a precision mismatch (the model always keeps `U` and
    /// `Z` in one precision) or a length mismatch.
    #[inline]
    pub fn dot(&self, other: RowRef<'_>) -> f64 {
        match (self, other) {
            (RowRef::F64(a), RowRef::F64(b)) => csrplus_linalg::vector::dot(a, b),
            (RowRef::F32(a), RowRef::F32(b)) => csrplus_linalg::vector::dot_f32(a, b),
            _ => panic!("RowRef::dot: mixed storage precisions"),
        }
    }

    /// Euclidean norm of the row (scaled accumulation, as
    /// [`csrplus_linalg::vector::norm2`]).
    pub fn norm2(&self) -> f64 {
        match self {
            RowRef::F64(s) => csrplus_linalg::vector::norm2(s),
            RowRef::F32(s) => csrplus_linalg::vector::norm2_iter(s.iter().map(|&v| v as f64)),
        }
    }

    /// Euclidean norm of elements `1..` (the split-bound tail).
    pub fn tail_norm2(&self) -> f64 {
        match self {
            RowRef::F64(s) => csrplus_linalg::vector::norm2(s.get(1..).unwrap_or(&[])),
            RowRef::F32(s) => csrplus_linalg::vector::norm2_iter(
                s.get(1..).unwrap_or(&[]).iter().map(|&v| v as f64),
            ),
        }
    }
}

/// A borrowed whole-factor view in its storage precision — the currency
/// of the block kernels (`matmul_into` for `f64`, `matmul_into_mixed`
/// for `f32` storage).
#[derive(Clone, Copy)]
pub enum FactorView<'a> {
    /// Double-precision storage.
    F64(MatView<'a, f64>),
    /// Single-precision storage.
    F32(MatView<'a, f32>),
}

/// An `n × r` dense factor: owned or mapped, `f64` or `f32` storage.
#[derive(Debug, Clone)]
pub enum Factor {
    /// Owned row-major `f64` storage.
    Owned(DenseMatrix),
    /// `f64` storage borrowed from a shared mapped region.
    Mapped(MappedMatrix),
    /// Owned row-major `f32` storage (accumulation stays `f64`).
    OwnedF32(DenseMatrixF32),
    /// `f32` storage borrowed from a shared mapped region.
    MappedF32(MappedMatrixF32),
}

impl Factor {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            Factor::Owned(m) => m.rows(),
            Factor::Mapped(m) => m.rows(),
            Factor::OwnedF32(m) => m.rows(),
            Factor::MappedF32(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            Factor::Owned(m) => m.cols(),
            Factor::Mapped(m) => m.cols(),
            Factor::OwnedF32(m) => m.cols(),
            Factor::MappedF32(m) => m.cols(),
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// The storage precision of this factor.
    pub fn precision(&self) -> crate::precision::Precision {
        match self {
            Factor::Owned(_) | Factor::Mapped(_) => crate::precision::Precision::F64,
            Factor::OwnedF32(_) | Factor::MappedF32(_) => crate::precision::Precision::F32,
        }
    }

    /// The factor as a flat row-major `f64` slice.
    ///
    /// # Panics
    /// Panics on `f32` storage — precision-agnostic callers use
    /// [`Factor::row_ref`] / [`Factor::factor_view`] instead.
    pub fn as_slice(&self) -> &[f64] {
        match self {
            Factor::Owned(m) => m.as_slice(),
            Factor::Mapped(m) => m.as_slice(),
            _ => panic!("Factor::as_slice on f32 storage"),
        }
    }

    /// The factor as a flat row-major `f32` slice.
    ///
    /// # Panics
    /// Panics on `f64` storage.
    pub fn as_f32_slice(&self) -> &[f32] {
        match self {
            Factor::OwnedF32(m) => m.as_slice(),
            Factor::MappedF32(m) => m.as_slice(),
            _ => panic!("Factor::as_f32_slice on f64 storage"),
        }
    }

    /// Row `i` as a contiguous `f64` slice.
    ///
    /// # Panics
    /// Panics on `f32` storage — see [`Factor::row_ref`].
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        match self {
            Factor::Owned(m) => m.row(i),
            Factor::Mapped(m) => m.row(i),
            _ => panic!("Factor::row on f32 storage"),
        }
    }

    /// Row `i` in its storage precision.
    #[inline]
    pub fn row_ref(&self, i: usize) -> RowRef<'_> {
        match self {
            Factor::Owned(m) => RowRef::F64(m.row(i)),
            Factor::Mapped(m) => RowRef::F64(m.row(i)),
            Factor::OwnedF32(m) => RowRef::F32(m.row(i)),
            Factor::MappedF32(m) => RowRef::F32(m.row(i)),
        }
    }

    /// Element `(i, j)`, widened to `f64`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            Factor::Owned(m) => m.get(i, j),
            Factor::Mapped(m) => m.get(i, j),
            Factor::OwnedF32(m) => m.row(i)[j] as f64,
            Factor::MappedF32(m) => m.get(i, j) as f64,
        }
    }

    /// A borrowing `f64` view — the common currency of the `f64` compute
    /// kernels, so downstream products are bitwise identical across
    /// representations.
    ///
    /// # Panics
    /// Panics on `f32` storage — see [`Factor::factor_view`].
    pub fn view(&self) -> MatView<'_> {
        match self {
            Factor::Owned(m) => m.view(),
            Factor::Mapped(m) => m.view(),
            _ => panic!("Factor::view on f32 storage"),
        }
    }

    /// A borrowing view in the storage precision.
    pub fn factor_view(&self) -> FactorView<'_> {
        match self {
            Factor::Owned(m) => FactorView::F64(m.view()),
            Factor::Mapped(m) => FactorView::F64(m.view()),
            Factor::OwnedF32(m) => FactorView::F32(m.view()),
            Factor::MappedF32(m) => FactorView::F32(m.view()),
        }
    }

    /// Gathers the given rows into a fresh owned factor of the *same*
    /// storage precision, so the downstream block product can run the
    /// matching kernel.
    pub fn select_rows(&self, rows: &[usize]) -> Factor {
        match self {
            Factor::Owned(m) => Factor::Owned(m.select_rows(rows)),
            Factor::Mapped(m) => {
                let cols = m.cols();
                let mut data = Vec::with_capacity(rows.len() * cols);
                for &i in rows {
                    data.extend_from_slice(m.row(i));
                }
                Factor::Owned(
                    DenseMatrix::from_vec(rows.len(), cols, data).expect("consistent shape"),
                )
            }
            Factor::OwnedF32(m) => {
                let cols = m.cols();
                let mut data = Vec::with_capacity(rows.len() * cols);
                for &i in rows {
                    data.extend_from_slice(m.row(i));
                }
                Factor::OwnedF32(
                    DenseMatrixF32::from_vec(rows.len(), cols, data).expect("consistent shape"),
                )
            }
            Factor::MappedF32(m) => {
                let cols = m.cols();
                let mut data = Vec::with_capacity(rows.len() * cols);
                for &i in rows {
                    data.extend_from_slice(m.row(i));
                }
                Factor::OwnedF32(
                    DenseMatrixF32::from_vec(rows.len(), cols, data).expect("consistent shape"),
                )
            }
        }
    }

    /// An owned `f64` copy (materialises mapped storage, widens `f32`).
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            Factor::Owned(m) => m.clone(),
            Factor::Mapped(m) => DenseMatrix::from_vec(m.rows(), m.cols(), m.as_slice().to_vec())
                .expect("consistent shape"),
            Factor::OwnedF32(m) => DenseMatrix::from_vec(
                m.rows(),
                m.cols(),
                m.as_slice().iter().map(|&v| v as f64).collect(),
            )
            .expect("consistent shape"),
            Factor::MappedF32(m) => DenseMatrix::from_vec(
                m.rows(),
                m.cols(),
                m.as_slice().iter().map(|&v| v as f64).collect(),
            )
            .expect("consistent shape"),
        }
    }

    /// True when the factor borrows mapped (page-cache) storage.
    pub fn is_mapped(&self) -> bool {
        matches!(self, Factor::Mapped(_) | Factor::MappedF32(_))
    }

    /// Heap bytes owned by this factor — zero for mapped storage, whose
    /// pages belong to the kernel page cache, not this process's heap.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Factor::Owned(m) => m.heap_bytes(),
            Factor::OwnedF32(m) => m.heap_bytes(),
            Factor::Mapped(_) | Factor::MappedF32(_) => 0,
        }
    }
}

impl From<DenseMatrix> for Factor {
    fn from(m: DenseMatrix) -> Self {
        Factor::Owned(m)
    }
}

impl From<DenseMatrixF32> for Factor {
    fn from(m: DenseMatrixF32) -> Self {
        Factor::OwnedF32(m)
    }
}
