//! Accuracy metrics — §4.2.3 of the paper.

use csrplus_linalg::DenseMatrix;

/// `AvgDiff_Q(Ŝ, S) = (1 / (|V|·|Q|)) · Σ_{(i,j)} |Ŝ_{i,j} − S_{i,j}|`
/// over the `n × |Q|` similarity blocks (the measure of Table 3).
///
/// # Panics
/// Panics on shape mismatch or empty matrices.
pub fn avg_diff(estimate: &DenseMatrix, exact: &DenseMatrix) -> f64 {
    assert_eq!(estimate.shape(), exact.shape(), "avg_diff: shape mismatch");
    let (n, q) = estimate.shape();
    assert!(n > 0 && q > 0, "avg_diff: empty matrices");
    let total: f64 =
        estimate.as_slice().iter().zip(exact.as_slice().iter()).map(|(a, b)| (a - b).abs()).sum();
    total / (n as f64 * q as f64)
}

/// Largest absolute entry-wise difference (`‖Ŝ − S‖_max`).
pub fn max_diff(estimate: &DenseMatrix, exact: &DenseMatrix) -> f64 {
    estimate.max_abs_diff(exact)
}

/// Precision@k between two ranked lists of node ids: the fraction of the
/// top-`k` estimated ids that appear in the top-`k` exact ids.  Used by
/// the retrieval-quality extension experiments.
pub fn precision_at_k(estimated: &[usize], exact: &[usize], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let est: Vec<usize> = estimated.iter().copied().take(k).collect();
    let truth: std::collections::HashSet<usize> = exact.iter().copied().take(k).collect();
    let hits = est.iter().filter(|id| truth.contains(id)).count();
    hits as f64 / k.min(est.len().max(1)) as f64
}

/// Normalised discounted cumulative gain at `k` between an estimated
/// ranking and graded relevances (`relevance[node]`), the standard
/// ranking-quality measure for retrieval experiments.  1.0 = the
/// estimated order is an ideal ordering of the relevances.
pub fn ndcg_at_k(estimated: &[usize], relevance: &[f64], k: usize) -> f64 {
    let dcg: f64 = estimated
        .iter()
        .take(k)
        .enumerate()
        .map(|(rank, &node)| relevance[node] / ((rank + 2) as f64).log2())
        .sum();
    let mut ideal: Vec<f64> = relevance.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let idcg: f64 =
        ideal.iter().take(k).enumerate().map(|(rank, rel)| rel / ((rank + 2) as f64).log2()).sum();
    if idcg > 0.0 {
        dcg / idcg
    } else {
        1.0 // no relevant items at all: any order is vacuously ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_diff_known_value() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![1.5, 2.0, 2.0, 4.0]).unwrap();
        // |diffs| = [0.5, 0, 1, 0] → mean = 1.5/4
        assert!((avg_diff(&a, &b) - 0.375).abs() < 1e-15);
        assert_eq!(avg_diff(&a, &a), 0.0);
    }

    #[test]
    fn avg_diff_is_symmetric() {
        let a = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = DenseMatrix::from_vec(1, 3, vec![0.0, 5.0, 3.0]).unwrap();
        assert_eq!(avg_diff(&a, &b), avg_diff(&b, &a));
    }

    #[test]
    fn max_diff_finds_worst_entry() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 3.0, 4.5]).unwrap();
        assert_eq!(max_diff(&a, &b), 2.0);
    }

    #[test]
    fn ndcg_basics() {
        let relevance = [0.0, 3.0, 1.0, 2.0];
        // Ideal order: 1, 3, 2 (then 0).
        assert!((ndcg_at_k(&[1, 3, 2], &relevance, 3) - 1.0).abs() < 1e-12);
        // Worst top-3 order of the relevant items still scores < 1.
        let worst = ndcg_at_k(&[2, 3, 1], &relevance, 3);
        assert!(worst < 1.0 && worst > 0.5);
        // Retrieving only the irrelevant node scores 0.
        assert_eq!(ndcg_at_k(&[0], &relevance, 1), 0.0);
        // All-zero relevance is vacuously perfect.
        assert_eq!(ndcg_at_k(&[0, 1], &[0.0, 0.0], 2), 1.0);
    }

    #[test]
    fn ndcg_monotone_in_better_placement() {
        let relevance = [1.0, 0.0, 0.0, 5.0];
        let good = ndcg_at_k(&[3, 0, 1], &relevance, 3);
        let bad = ndcg_at_k(&[1, 0, 3], &relevance, 3);
        assert!(good > bad);
    }

    #[test]
    fn precision_at_k_basics() {
        assert_eq!(precision_at_k(&[1, 2, 3], &[3, 2, 1], 3), 1.0);
        assert_eq!(precision_at_k(&[1, 2, 3], &[4, 5, 6], 3), 0.0);
        assert!((precision_at_k(&[1, 2, 9], &[1, 2, 3], 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&[], &[], 0), 1.0);
    }
}
