//! Exact CoSimRank references.
//!
//! Three independent ways of computing the true fixed point of
//! `S = c·QᵀSQ + Iₙ`, used as ground truth for Table 3's `AvgDiff` and to
//! cross-validate CSR+ and every baseline:
//!
//! * [`single_source`] / [`multi_source`] — per-query recursion using only
//!   sparse matvecs: `[S_K]·v = v + c·Qᵀ(S_{K-1}·(Q·v))`, i.e. `2K` matvecs
//!   per query and `O(n)` live memory.  Scales to large graphs.
//! * [`all_pairs_iterative`] — the dense fixed-point iteration
//!   `S ← c·Qᵀ(SQ) + Iₙ` (`O(n²)` memory; small graphs).
//! * [`all_pairs_kronecker_solve`] — Li et al.'s closed form Eq. (5),
//!   `vec(S) = (I_{n²} − c(Q⊗Q)ᵀ)⁻¹ vec(Iₙ)`, solved by LU.  `O(n⁴)`
//!   memory: tiny graphs only, but entirely independent of any iteration.

use crate::config::linear_iterations;
use csrplus_graph::{TransitionMatrix, TransitionOps};
use csrplus_linalg::kron::kron;
use csrplus_linalg::lu::Lu;
use csrplus_linalg::{DenseMatrix, LinalgError};

/// Exact single-source CoSimRank `[S]_{*,q}`, truncated so the geometric
/// tail is below `eps`.
///
/// Cost: `2K` sparse matvecs with `K = linear_iterations(c, eps)`.
pub fn single_source<T: TransitionOps + ?Sized>(t: &T, q: usize, c: f64, eps: f64) -> Vec<f64> {
    assert!(q < t.n(), "query {q} out of bounds");
    let k = linear_iterations(c, eps);
    single_source_k(t, q, c, k)
}

/// Exact single-source CoSimRank truncated at exactly `k` iterations
/// (the primitive behind the CSR-RLS baseline, whose iteration count is
/// pinned to `r` for fairness in the paper's experiments).
pub fn single_source_k<T: TransitionOps + ?Sized>(t: &T, q: usize, c: f64, k: usize) -> Vec<f64> {
    assert!(q < t.n(), "query {q} out of bounds");
    let mut e = vec![0.0; t.n()];
    e[q] = 1.0;
    apply_similarity_operator(t, &e, c, k)
}

/// Applies the K-truncated similarity operator to an arbitrary vector:
/// `S_K·v` with `S_0 = I`, `S_k = I + c·Qᵀ S_{k-1} Q` — `2K` sparse
/// matvecs and `O(n)` live memory.
pub fn apply_similarity_operator<T: TransitionOps + ?Sized>(
    t: &T,
    v: &[f64],
    c: f64,
    k: usize,
) -> Vec<f64> {
    if k == 0 {
        return v.to_vec();
    }
    let qv = t.propagate(v);
    let inner = apply_similarity_operator(t, &qv, c, k - 1);
    let mut out = t.propagate_transpose(&inner);
    for (o, &vi) in out.iter_mut().zip(v.iter()) {
        *o = c * *o + vi;
    }
    out
}

/// Exact single-pair CoSimRank by the literal Eq. (3) of Rothe & Schütze:
/// `[S]_{a,b} = Σ_k c^k · (p_a^{(k)})ᵀ p_b^{(k)}`, where `p^{(k+1)} = Q·p^{(k)}`
/// are the iterated PPR vectors.  Two rolling vectors, `2K` sparse
/// matvecs — the cheapest possible exact primitive, and an independent
/// cross-check of the recursion used by [`single_source`].
pub fn single_pair<T: TransitionOps + ?Sized>(t: &T, a: usize, b: usize, c: f64, eps: f64) -> f64 {
    assert!(a < t.n() && b < t.n(), "pair ({a},{b}) out of bounds");
    let k = linear_iterations(c, eps);
    let mut pa = vec![0.0; t.n()];
    pa[a] = 1.0;
    let mut pb = vec![0.0; t.n()];
    pb[b] = 1.0;
    let mut total = csrplus_linalg::vector::dot(&pa, &pb); // k = 0 term
    let mut factor = c;
    for _ in 1..=k {
        pa = t.propagate(&pa);
        pb = t.propagate(&pb);
        total += factor * csrplus_linalg::vector::dot(&pa, &pb);
        factor *= c;
    }
    total
}

/// Exact multi-source CoSimRank `[S]_{*,Q}` (column `j` answers
/// `queries[j]`), by running the single-source recursion per query.
pub fn multi_source<T: TransitionOps + ?Sized>(
    t: &T,
    queries: &[usize],
    c: f64,
    eps: f64,
) -> DenseMatrix {
    let n = t.n();
    let mut out = DenseMatrix::zeros(n, queries.len());
    for (j, &q) in queries.iter().enumerate() {
        let col = single_source(t, q, c, eps);
        out.set_col(j, &col);
    }
    out
}

/// Exact all-pairs CoSimRank by dense fixed-point iteration
/// (`O(n²)` memory — intended for validation on small graphs).
pub fn all_pairs_iterative(t: &TransitionMatrix, c: f64, eps: f64) -> DenseMatrix {
    let n = t.n();
    let k = linear_iterations(c, eps);
    let mut s = DenseMatrix::identity(n);
    for _ in 0..k {
        // S ← c·Qᵀ(S·Q) + I.  S·Q is a direct dense×sparse product (row i
        // of S scattered over Q's rows) — no transposed materialisation.
        let sq = t.q().left_matmul_dense(&s); // S·Q
        let mut next = t.qt().matmul_dense(&sq); // Qᵀ·S·Q
        next.scale_in_place(c);
        next.add_diag(1.0).expect("square");
        s = next;
    }
    s
}

/// Exact all-pairs CoSimRank through Li et al.'s closed form Eq. (5)
/// (LU solve in `n²` dimensions — tiny graphs only).
///
/// # Errors
/// Propagates LU failures (the system matrix is always non-singular for
/// `c < 1`, so errors indicate numerical breakdown).
pub fn all_pairs_kronecker_solve(t: &TransitionMatrix, c: f64) -> Result<DenseMatrix, LinalgError> {
    let n = t.n();
    let q = t.q().to_dense();
    // M = I_{n²} − c·(Q ⊗ Q)ᵀ
    let mut m = kron(&q, &q).transpose();
    m.scale_in_place(-c);
    m.add_diag(1.0)?;
    let rhs = DenseMatrix::identity(n).vectorize();
    let x = Lu::factor(&m)?.solve_vec(&rhs)?;
    DenseMatrix::unvectorize(n, n, &x)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the matrix math
mod tests {
    use super::*;
    use csrplus_graph::generators::{classic::cycle, classic::star, figure1_graph};

    fn fig1() -> TransitionMatrix {
        TransitionMatrix::from_graph(&figure1_graph())
    }

    #[test]
    fn three_references_agree_on_figure1() {
        let t = fig1();
        let c = 0.6;
        let dense = all_pairs_iterative(&t, c, 1e-10);
        let solved = all_pairs_kronecker_solve(&t, c).unwrap();
        assert!(dense.approx_eq(&solved, 1e-8), "diff {}", dense.max_abs_diff(&solved));
        for q in 0..6 {
            let col = single_source(&t, q, c, 1e-10);
            for i in 0..6 {
                assert!(
                    (col[i] - solved.get(i, q)).abs() < 1e-8,
                    "S[{i},{q}]: {} vs {}",
                    col[i],
                    solved.get(i, q)
                );
            }
        }
    }

    #[test]
    fn single_pair_ppr_formulation_matches_recursion() {
        // Eq. (3) (rolling PPR vectors) vs the S_K recursion vs the
        // Kronecker solve — three formulations, one answer.
        let t = fig1();
        let solved = all_pairs_kronecker_solve(&t, 0.6).unwrap();
        for a in 0..6 {
            for b in 0..6 {
                let pair = single_pair(&t, a, b, 0.6, 1e-11);
                assert!(
                    (pair - solved.get(a, b)).abs() < 1e-8,
                    "S[{a},{b}]: {pair} vs {}",
                    solved.get(a, b)
                );
            }
        }
    }

    #[test]
    fn single_pair_is_symmetric() {
        let t = fig1();
        for a in 0..6 {
            for b in 0..6 {
                let ab = single_pair(&t, a, b, 0.6, 1e-10);
                let ba = single_pair(&t, b, a, 0.6, 1e-10);
                assert!((ab - ba).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn multi_source_stacks_columns() {
        let t = fig1();
        let m = multi_source(&t, &[1, 3], 0.6, 1e-8);
        let c1 = single_source(&t, 1, 0.6, 1e-8);
        let c3 = single_source(&t, 3, 0.6, 1e-8);
        for i in 0..6 {
            assert_eq!(m.get(i, 0), c1[i]);
            assert_eq!(m.get(i, 1), c3[i]);
        }
    }

    #[test]
    fn compressed_transition_is_bitwise_interchangeable() {
        // The exact algorithms are generic over `TransitionOps`; the
        // gap-compressed backend stores bitwise-identical values and runs
        // the same kernels, so every answer matches exactly.
        let t = fig1();
        let ct = csrplus_graph::CompressedTransition::from_transition(&t);
        for q in 0..6 {
            assert_eq!(single_source(&t, q, 0.6, 1e-10), single_source(&ct, q, 0.6, 1e-10));
        }
        assert_eq!(single_pair(&t, 0, 3, 0.6, 1e-10), single_pair(&ct, 0, 3, 0.6, 1e-10));
        assert_eq!(
            multi_source(&t, &[1, 4], 0.6, 1e-8).as_slice(),
            multi_source(&ct, &[1, 4], 0.6, 1e-8).as_slice()
        );
    }

    #[test]
    fn fixed_point_equation_holds() {
        // The converged S must satisfy S = cQᵀSQ + I.
        let t = fig1();
        let c = 0.6;
        let s = all_pairs_iterative(&t, c, 1e-12);
        let qts = t.qt().matmul_dense(&s);
        let sq = qts.transpose();
        let mut rhs = t.qt().matmul_dense(&sq);
        rhs.scale_in_place(c);
        rhs.add_diag(1.0).unwrap();
        assert!(s.approx_eq(&rhs, 1e-9), "residual {}", s.max_abs_diff(&rhs));
    }

    #[test]
    fn cosimrank_is_symmetric_and_diag_dominant() {
        let t = fig1();
        let s = all_pairs_iterative(&t, 0.6, 1e-10);
        assert!(s.approx_eq(&s.transpose(), 1e-10));
        // [S]_{a,a} ≥ [S]_{a,x} (noted under Eq. (1) of the paper) and
        // the diagonal is at least 1.
        for a in 0..6 {
            assert!(s.get(a, a) >= 1.0 - 1e-12);
            for x in 0..6 {
                assert!(s.get(a, a) >= s.get(a, x) - 1e-12);
            }
        }
    }

    #[test]
    fn cycle_diagonal_closed_form() {
        // On a directed n-cycle, p_a^(k) are unit basis vectors and two
        // surfers starting at the same node always meet: [S]_{a,a} =
        // Σ c^k = 1/(1−c); distinct nodes never meet: [S]_{a,b} = 0.
        let t = TransitionMatrix::from_graph(&cycle(6));
        let c = 0.6;
        let s = all_pairs_iterative(&t, c, 1e-12);
        for a in 0..6 {
            assert!((s.get(a, a) - 1.0 / (1.0 - c)).abs() < 1e-6);
            for b in 0..6 {
                if a != b {
                    assert!(s.get(a, b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn star_leaves_are_fully_similar() {
        // All leaves of a star have the identical in-neighbour structure
        // (none) and identical PPR trajectories after hop 1 via the hub:
        // leaves i,j: p_i^(0)=e_i ⊥ e_j; p^(1) = Q e_i = 0 (leaf has no
        // in-edges) — so S[i,j] = 0 for i≠j and S[i,i] = 1.
        let t = TransitionMatrix::from_graph(&star(5));
        let s = all_pairs_iterative(&t, 0.6, 1e-12);
        for i in 1..5 {
            assert!((s.get(i, i) - 1.0).abs() < 1e-12);
            for j in 1..5 {
                if i != j {
                    assert!(s.get(i, j).abs() < 1e-12);
                }
            }
        }
        // The hub's self-similarity accumulates its in-walk meetings:
        // p_hub^(1) is uniform over leaves, which then die out; S[0,0] =
        // 1 + c·(1/4) (4 leaves, each contributing (1/4)² at k=1).
        assert!((s.get(0, 0) - (1.0 + 0.6 * 0.25)).abs() < 1e-9);
    }

    #[test]
    fn eps_controls_truncation() {
        let t = fig1();
        let rough = single_source(&t, 1, 0.6, 1e-2);
        let fine = single_source(&t, 1, 0.6, 1e-12);
        let worst: f64 =
            rough.iter().zip(fine.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(worst < 1e-2, "truncation error {worst} above eps");
        assert!(worst > 0.0, "different eps must change something");
    }
}
