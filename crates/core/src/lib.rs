//! # csrplus-core
//!
//! The CSR+ multi-source CoSimRank algorithm (EDBT 2024), its exact
//! reference implementations, and the paper's accuracy metric.
//!
//! CoSimRank is the fixed point of `S = c·QᵀSQ + Iₙ` (Eq. 1) over the
//! column-normalised adjacency matrix `Q`.  CSR+ answers multi-source
//! queries `[S]_{*,Q}` in `O(r(m + n(r + |Q|)))` time and `O(rn)` memory by
//! combining a rank-`r` truncated SVD with the four optimisation stages of
//! Theorems 3.1–3.5:
//!
//! 1. the mixed-product identity collapses `(V⊗V)ᵀ(U⊗U)` to `Θ⊗Θ`;
//! 2. column-orthonormality of `V` removes `(V⊗V)ᵀ` from the query path;
//! 3. `Λ·vec(I_r)` is obtained as `vec(ΣPΣ)` where `P = cHPHᵀ + I_r` lives
//!    entirely in the `r × r` subspace (solved by repeated squaring);
//! 4. `(U⊗U)·vec(·)` becomes the sandwich `U(·)Uᵀ`, evaluated lazily
//!    against the query columns only.
//!
//! Entry points:
//! * [`CsrPlusConfig`] / [`CsrPlusModel`] — precompute once, query often;
//! * [`exact`] — ground-truth CoSimRank (per-query recursion, dense
//!   all-pairs iteration, and a Kronecker linear solve for tiny graphs);
//! * [`metrics`] — the paper's `AvgDiff` accuracy measure;
//! * [`engine`] — the object-safe trait every algorithm (CSR+ and the
//!   baselines in `csrplus-baselines`) implements for the bench harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod exact;
pub mod factor;
pub mod metrics;
pub mod model;
pub mod persist;
pub mod precision;

pub use config::{CsrPlusConfig, SvdBackend};
// Re-exported because it appears throughout the public API (query blocks,
// `_into` scratch buffers) — dependants need not name csrplus-linalg.
pub use csrplus_linalg::DenseMatrix;
pub use engine::{CoSimRankEngine, EngineOutcome};
pub use error::CoSimRankError;
pub use factor::{DenseMatrixF32, Factor, FactorView, RowRef};
pub use model::{CsrPlusModel, ModelPermutation};
pub use precision::{set_storage_precision, storage_precision, Precision};
