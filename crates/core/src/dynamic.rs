//! Dynamic CoSimRank on evolving graphs.
//!
//! The paper treats static graphs and cites Yu & Wang's F-CoSim for the
//! evolving case as related work; this module provides that extension on
//! top of the CSR+ machinery.  The observation: inserting or deleting the
//! edge `x → y` changes **one column** of the transition matrix —
//!
//! ```text
//! Q' = Q + a·e_yᵀ,   a = col'_y − col_y
//! ```
//!
//! — a rank-one update, which Brand's algorithm
//! ([`csrplus_linalg::svd_update`]) applies to the truncated SVD in
//! `O(nr + r³)` time.  Rebuilding the `r × r` subspace state and `Z`
//! afterwards costs `O(nr²)` (Algorithm 1 lines 3–6), so an edge update
//! is ~one query's worth of work instead of a full re-factorisation.
//!
//! Truncated rank-one updates drift by the discarded spectral tail, so a
//! configurable **refresh policy** re-factorises from scratch every
//! `refresh_interval` updates (or on demand via
//! [`DynamicCsrPlus::refresh`]).

use crate::config::CsrPlusConfig;
use crate::error::CoSimRankError;
use crate::model::CsrPlusModel;
use csrplus_graph::{DiGraph, TransitionMatrix};
use csrplus_linalg::randomized::randomized_svd;
use csrplus_linalg::svd_update::rank_one_update;
use csrplus_linalg::TruncatedSvd;

/// Configuration for [`DynamicCsrPlus`].
#[derive(Debug, Clone, Copy)]
pub struct DynamicConfig {
    /// The underlying CSR+ configuration.
    pub base: CsrPlusConfig,
    /// Full re-factorisation after this many incremental updates
    /// (0 = refresh on every update, i.e. no incremental path).
    pub refresh_interval: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig { base: CsrPlusConfig::default(), refresh_interval: 64 }
    }
}

/// A CSR+ model that stays queryable while the graph evolves.
///
/// ```
/// use csrplus_core::dynamic::{DynamicConfig, DynamicCsrPlus};
/// use csrplus_core::CsrPlusConfig;
/// use csrplus_graph::generators::figure1_graph;
///
/// let cfg = DynamicConfig {
///     base: CsrPlusConfig { rank: 6, ..Default::default() },
///     ..Default::default()
/// };
/// let mut live = DynamicCsrPlus::new(&figure1_graph(), cfg)?;
/// live.insert_edge(1, 4)?;                      // b → e appears
/// let s = live.model().multi_source(&[1])?;     // still queryable
/// assert_eq!(s.rows(), 6);
/// # Ok::<(), csrplus_core::CoSimRankError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicCsrPlus {
    config: DynamicConfig,
    n: usize,
    /// Sorted in-neighbour list per node — the defining data of `Q`'s
    /// columns (`Q[x,y] = 1/indeg(y)` iff `x ∈ in(y)`).
    in_neighbors: Vec<Vec<u32>>,
    /// Maintained truncated SVD of `Q` (standard convention `Q ≈ UΣVᵀ`).
    svd: TruncatedSvd,
    /// Query model rebuilt from the current factors.
    model: CsrPlusModel,
    updates_since_refresh: usize,
}

impl DynamicCsrPlus {
    /// Builds the initial model from a graph.
    pub fn new(graph: &DiGraph, config: DynamicConfig) -> Result<Self, CoSimRankError> {
        let n = graph.num_nodes();
        config.base.validate(n)?;
        let mut in_neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(x, y) in graph.edges() {
            in_neighbors[y as usize].push(x);
        }
        for list in &mut in_neighbors {
            list.sort_unstable();
        }
        let transition = TransitionMatrix::from_graph(graph);
        let svd = randomized_svd(&transition, &config.base.svd_config())?;
        let model = CsrPlusModel::from_svd(&config.base, &svd)?;
        Ok(DynamicCsrPlus { config, n, in_neighbors, svd, model, updates_since_refresh: 0 })
    }

    /// Graph size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current query model — all of [`CsrPlusModel`]'s query API
    /// (multi-source, single-source, top-k, …) is available on it.
    pub fn model(&self) -> &CsrPlusModel {
        &self.model
    }

    /// Incremental updates applied since the last full refresh.
    pub fn updates_since_refresh(&self) -> usize {
        self.updates_since_refresh
    }

    /// True if edge `x → y` currently exists.
    pub fn has_edge(&self, x: u32, y: u32) -> bool {
        (y as usize) < self.n && self.in_neighbors[y as usize].binary_search(&x).is_ok()
    }

    /// Current number of edges.
    pub fn num_edges(&self) -> usize {
        self.in_neighbors.iter().map(Vec::len).sum()
    }

    /// Inserts edge `x → y`; returns `false` (and changes nothing) when
    /// the edge already exists.
    pub fn insert_edge(&mut self, x: u32, y: u32) -> Result<bool, CoSimRankError> {
        self.check_endpoints(x, y)?;
        let list = &mut self.in_neighbors[y as usize];
        match list.binary_search(&x) {
            Ok(_) => Ok(false),
            Err(pos) => {
                let old = self.column(y);
                self.in_neighbors[y as usize].insert(pos, x);
                let new = self.column(y);
                self.apply_column_change(y, &old, &new)?;
                Ok(true)
            }
        }
    }

    /// Removes edge `x → y`; returns `false` when it was absent.
    pub fn remove_edge(&mut self, x: u32, y: u32) -> Result<bool, CoSimRankError> {
        self.check_endpoints(x, y)?;
        let list = &mut self.in_neighbors[y as usize];
        match list.binary_search(&x) {
            Err(_) => Ok(false),
            Ok(pos) => {
                let old = self.column(y);
                self.in_neighbors[y as usize].remove(pos);
                let new = self.column(y);
                self.apply_column_change(y, &old, &new)?;
                Ok(true)
            }
        }
    }

    /// Re-factorises from scratch, resetting incremental drift.
    pub fn refresh(&mut self) -> Result<(), CoSimRankError> {
        let graph = self.to_graph();
        let transition = TransitionMatrix::from_graph(&graph);
        self.svd = randomized_svd(&transition, &self.config.base.svd_config())?;
        self.model = CsrPlusModel::from_svd(&self.config.base, &self.svd)?;
        self.updates_since_refresh = 0;
        Ok(())
    }

    /// Materialises the current edge set as a [`DiGraph`].
    pub fn to_graph(&self) -> DiGraph {
        let mut edges = Vec::with_capacity(self.num_edges());
        for (y, list) in self.in_neighbors.iter().enumerate() {
            for &x in list {
                edges.push((x, y as u32));
            }
        }
        DiGraph::from_edges(self.n, edges).expect("maintained edges are in bounds")
    }

    fn check_endpoints(&self, x: u32, y: u32) -> Result<(), CoSimRankError> {
        for node in [x, y] {
            if node as usize >= self.n {
                return Err(CoSimRankError::QueryOutOfBounds { node: node as usize, n: self.n });
            }
        }
        Ok(())
    }

    /// Dense column `y` of `Q` under the current in-neighbour lists.
    fn column(&self, y: u32) -> Vec<f64> {
        let mut col = vec![0.0; self.n];
        let list = &self.in_neighbors[y as usize];
        if !list.is_empty() {
            let w = 1.0 / list.len() as f64;
            for &x in list {
                col[x as usize] = w;
            }
        }
        col
    }

    fn apply_column_change(
        &mut self,
        y: u32,
        old: &[f64],
        new: &[f64],
    ) -> Result<(), CoSimRankError> {
        self.updates_since_refresh += 1;
        if self.config.refresh_interval == 0
            || self.updates_since_refresh >= self.config.refresh_interval
        {
            return self.refresh();
        }
        // Rank-one update: Q' = Q + (new − old)·e_yᵀ.
        let a: Vec<f64> = new.iter().zip(old.iter()).map(|(n, o)| n - o).collect();
        let mut b = vec![0.0; self.n];
        b[y as usize] = 1.0;
        self.svd = rank_one_update(&self.svd, &a, &b, self.config.base.rank)?;
        self.model = CsrPlusModel::from_svd(&self.config.base, &self.svd)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use csrplus_graph::generators::{classic::cycle, figure1_graph};

    fn full_rank_config(n: usize) -> DynamicConfig {
        DynamicConfig {
            base: CsrPlusConfig { rank: n, epsilon: 1e-10, ..Default::default() },
            refresh_interval: 1_000,
        }
    }

    /// Fresh static model over the dynamic engine's current graph.
    fn fresh(dynamic: &DynamicCsrPlus, rank: usize) -> CsrPlusModel {
        let t = TransitionMatrix::from_graph(&dynamic.to_graph());
        let cfg = CsrPlusConfig { rank, epsilon: 1e-10, ..Default::default() };
        CsrPlusModel::precompute(&t, &cfg).unwrap()
    }

    #[test]
    fn insert_matches_fresh_precompute_at_full_rank() {
        let g = figure1_graph();
        let mut dyn_model = DynamicCsrPlus::new(&g, full_rank_config(6)).unwrap();
        assert!(dyn_model.insert_edge(1, 4).unwrap()); // b → e
        assert!(dyn_model.has_edge(1, 4));
        let s_dyn = dyn_model.model().multi_source(&[1, 3]).unwrap();
        let s_fresh = fresh(&dyn_model, 6).multi_source(&[1, 3]).unwrap();
        assert!(
            s_dyn.approx_eq(&s_fresh, 1e-6),
            "dynamic vs fresh diff {}",
            s_dyn.max_abs_diff(&s_fresh)
        );
    }

    #[test]
    fn insert_then_remove_restores_original_scores() {
        let g = figure1_graph();
        let mut dyn_model = DynamicCsrPlus::new(&g, full_rank_config(6)).unwrap();
        let before = dyn_model.model().multi_source(&[0, 5]).unwrap();
        assert!(dyn_model.insert_edge(0, 4).unwrap());
        assert!(dyn_model.remove_edge(0, 4).unwrap());
        let after = dyn_model.model().multi_source(&[0, 5]).unwrap();
        assert!(before.approx_eq(&after, 1e-6), "round-trip drift {}", before.max_abs_diff(&after));
        assert_eq!(dyn_model.num_edges(), g.num_edges());
    }

    #[test]
    fn duplicate_and_missing_edges_are_noops() {
        let g = figure1_graph();
        let mut dyn_model = DynamicCsrPlus::new(&g, full_rank_config(6)).unwrap();
        assert!(!dyn_model.insert_edge(0, 1).unwrap()); // a → b exists
        assert!(!dyn_model.remove_edge(0, 0).unwrap()); // absent
        assert_eq!(dyn_model.updates_since_refresh(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let g = figure1_graph();
        let mut dyn_model = DynamicCsrPlus::new(&g, full_rank_config(6)).unwrap();
        assert!(dyn_model.insert_edge(0, 99).is_err());
        assert!(dyn_model.remove_edge(99, 0).is_err());
        assert!(!dyn_model.has_edge(0, 99));
    }

    #[test]
    fn refresh_interval_triggers_exact_refactorisation() {
        let g = cycle(8);
        let cfg = DynamicConfig {
            base: CsrPlusConfig { rank: 8, epsilon: 1e-10, ..Default::default() },
            refresh_interval: 2,
        };
        let mut dyn_model = DynamicCsrPlus::new(&g, cfg).unwrap();
        assert!(dyn_model.insert_edge(0, 2).unwrap());
        assert_eq!(dyn_model.updates_since_refresh(), 1);
        assert!(dyn_model.insert_edge(0, 3).unwrap()); // hits the interval
        assert_eq!(dyn_model.updates_since_refresh(), 0);
    }

    #[test]
    fn dynamic_tracks_exact_cosimrank_through_edit_sequence() {
        let g = figure1_graph();
        let mut dyn_model = DynamicCsrPlus::new(&g, full_rank_config(6)).unwrap();
        let edits: [(u32, u32, bool); 4] =
            [(1, 4, true), (5, 1, true), (3, 0, false), (1, 4, false)];
        for (x, y, insert) in edits {
            if insert {
                dyn_model.insert_edge(x, y).unwrap();
            } else {
                dyn_model.remove_edge(x, y).unwrap();
            }
            let t = TransitionMatrix::from_graph(&dyn_model.to_graph());
            let want = exact::multi_source(&t, &[1, 3], 0.6, 1e-12);
            let got = dyn_model.model().multi_source(&[1, 3]).unwrap();
            assert!(
                got.approx_eq(&want, 1e-5),
                "after edit ({x},{y},{insert}): drift {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn low_rank_incremental_stays_close_to_fresh_low_rank() {
        // Drift at truncated rank must stay small relative to the scores.
        let g = figure1_graph();
        let cfg = DynamicConfig {
            base: CsrPlusConfig { rank: 4, epsilon: 1e-10, ..Default::default() },
            refresh_interval: 1_000,
        };
        let mut dyn_model = DynamicCsrPlus::new(&g, cfg).unwrap();
        dyn_model.insert_edge(1, 4).unwrap();
        let s_dyn = dyn_model.model().multi_source(&[3]).unwrap();
        let s_fresh = fresh(&dyn_model, 4).multi_source(&[3]).unwrap();
        assert!(
            s_dyn.max_abs_diff(&s_fresh) < 0.1,
            "low-rank drift {}",
            s_dyn.max_abs_diff(&s_fresh)
        );
    }

    #[test]
    fn explicit_refresh_resets_drift() {
        let g = figure1_graph();
        let cfg = DynamicConfig {
            base: CsrPlusConfig { rank: 4, epsilon: 1e-10, ..Default::default() },
            refresh_interval: 1_000,
        };
        let mut dyn_model = DynamicCsrPlus::new(&g, cfg).unwrap();
        dyn_model.insert_edge(1, 4).unwrap();
        assert_eq!(dyn_model.updates_since_refresh(), 1);
        dyn_model.refresh().unwrap();
        assert_eq!(dyn_model.updates_since_refresh(), 0);
        let s_dyn = dyn_model.model().multi_source(&[3]).unwrap();
        let s_fresh = fresh(&dyn_model, 4).multi_source(&[3]).unwrap();
        assert!(s_dyn.approx_eq(&s_fresh, 1e-9));
    }

    #[test]
    fn to_graph_round_trips() {
        let g = figure1_graph();
        let dyn_model = DynamicCsrPlus::new(&g, full_rank_config(6)).unwrap();
        assert_eq!(dyn_model.to_graph(), g);
    }
}
