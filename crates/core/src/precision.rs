//! Storage-precision selection for the memoised factors.
//!
//! The CSR+ factors (`U`, `Z`, both `n × r`) dominate the model
//! footprint.  Computation is always `f64` — every kernel accumulates in
//! double precision — but the *storage* of those two factors can be
//! halved to `f32`: the mixed kernels in `csrplus-linalg` widen each
//! element before multiplying, so the only loss is the one-time rounding
//! of the stored values.  The random-projection CoSimRank literature
//! shows the measure tolerates far more approximation than that; the
//! `simd_kernels` bench measures the actual AvgDiff rather than assuming
//! it.
//!
//! Selection is process-global and read by
//! [`crate::model::CsrPlusModel::from_svd`] at demotion time: the
//! `CSRPLUS_PRECISION` environment variable (`f64` default, `f32` /
//! `single` / `mixed` opt in) or the `--precision` CLI flag via
//! [`set_storage_precision`].  Loading a persisted model ignores the
//! global — the artifact's section dtypes say which precision it was
//! built with.

use std::sync::atomic::{AtomicU8, Ordering};

/// Storage precision of the dense factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Full double-precision storage (the default).
    F64,
    /// Single-precision storage with double-precision accumulation.
    F32,
}

impl Precision {
    /// Human-readable name (`"f64"` / `"f32"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

const UNSET: u8 = 0;
const P_F64: u8 = 1;
const P_F32: u8 = 2;

static STORAGE: AtomicU8 = AtomicU8::new(UNSET);

fn from_env() -> u8 {
    match std::env::var("CSRPLUS_PRECISION") {
        Ok(v) if matches!(v.as_str(), "f32" | "single" | "mixed") => P_F32,
        _ => P_F64,
    }
}

/// The storage precision new models are built with.
///
/// First use reads `CSRPLUS_PRECISION`; later calls return the cached
/// (or explicitly [`set_storage_precision`]-overridden) choice.
pub fn storage_precision() -> Precision {
    let mut cur = STORAGE.load(Ordering::Relaxed);
    if cur == UNSET {
        cur = from_env();
        STORAGE.store(cur, Ordering::Relaxed);
    }
    if cur == P_F32 {
        Precision::F32
    } else {
        Precision::F64
    }
}

/// Overrides the storage precision for subsequently built models
/// (the `--precision` CLI flag; also used by tests and benches).
pub fn set_storage_precision(p: Precision) {
    STORAGE.store(
        match p {
            Precision::F64 => P_F64,
            Precision::F32 => P_F32,
        },
        Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_round_trips() {
        let before = storage_precision();
        set_storage_precision(Precision::F32);
        assert_eq!(storage_precision(), Precision::F32);
        assert_eq!(storage_precision().name(), "f32");
        set_storage_precision(Precision::F64);
        assert_eq!(storage_precision(), Precision::F64);
        set_storage_precision(before);
    }
}
