//! Property tests for the scatter-gather merge: for *arbitrary* models,
//! row partitions, and `k`, the coordinator's K-way merge of per-shard
//! top-k heaps equals the single-process top-k — including shards with
//! more `k` than candidates, empty shards, and exact score ties.
//!
//! The merge under test is the pure comparator pipeline both
//! `render::top_k_from_column` and the shard `/shard/topk` route use:
//! (score descending, original id ascending), truncate `k`.

use csrplus_core::{CsrPlusConfig, CsrPlusModel, DenseMatrix};
use csrplus_graph::partition::Reordering;
use proptest::prelude::*;

/// Merge per-shard top-k lists the way the coordinator does.
fn merge_top_k(partials: &[Vec<(usize, f64)>], k: usize) -> Vec<(usize, f64)> {
    let mut best: Vec<(usize, f64)> = partials.iter().flatten().copied().collect();
    best.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    best.truncate(k);
    best
}

/// A model with deliberately collision-heavy factors: entries drawn from
/// a tiny set so duplicate scores (the tie-break regression surface) are
/// common, plus an arbitrary node relabeling.
fn arb_model() -> impl Strategy<Value = CsrPlusModel> {
    (2usize..12, 1usize..3).prop_flat_map(|(n, r)| {
        let r = r.min(n);
        // Entries quantised to quarter steps so duplicate scores (the
        // tie-break regression surface) occur constantly; one draw holds
        // both U (first half) and Z (second half).
        let entries = proptest::collection::vec(0u8..8, 2 * n * r);
        // The compat shim has no prop_shuffle: derive a permutation by
        // arg-sorting random keys (ties broken by id keep it a bijection).
        let keys = proptest::collection::vec(0u32..1000, n);
        (Just(n), Just(r), entries, keys).prop_map(|(n, r, entries, keys)| {
            let vals: Vec<f64> = entries.iter().map(|&q| f64::from(q) * 0.25 - 1.0).collect();
            let (u, z) = vals.split_at(n * r);
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_by_key(|&i| (keys[i as usize], i));
            let config = CsrPlusConfig { rank: r, ..Default::default() };
            let model = CsrPlusModel::from_parts(
                config,
                n,
                DenseMatrix::from_vec(n, r, u.to_vec()).unwrap(),
                DenseMatrix::from_vec(n, r, z.to_vec()).unwrap(),
                vec![1.0; r],
                DenseMatrix::identity(r),
                DenseMatrix::identity(r),
            )
            .unwrap();
            model.with_permutation(order, Reordering::DegreeSort).unwrap()
        })
    })
}

/// An arbitrary partition of `0..n` into contiguous ranges, empty ranges
/// included.
fn arb_partition(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec(0usize..=n, 0..4).prop_map(move |mut cuts| {
        cuts.push(0);
        cuts.push(n);
        cuts.sort_unstable();
        cuts.windows(2).map(|w| (w[0], w[1])).collect()
    })
}

proptest! {
    #[test]
    fn merged_shard_top_k_equals_single_process(
        model in arb_model(),
        cuts in arb_partition(12),
        q_seed in 0usize..12,
        k in 0usize..16,
    ) {
        let n = model.n();
        let q = q_seed % n;
        // Clamp the partition (drawn for the max n) onto this model;
        // clamping preserves order, so the ranges still tile 0..n.
        let partition: Vec<(usize, usize)> =
            cuts.iter().map(|&(lo, hi)| (lo.min(n), hi.min(n))).collect();
        prop_assert!(partition.last().is_some_and(|&(_, hi)| hi == n));

        let global = model.top_k_pruned(q, k).unwrap();
        // k > candidates-in-shard and empty shards both fall out of the
        // range API naturally; the merge must not care.
        let partials: Vec<Vec<(usize, f64)>> = partition
            .iter()
            .map(|&(lo, hi)| model.top_k_pruned_range(q, k, lo, hi).unwrap())
            .collect();
        let merged = merge_top_k(&partials, k);
        prop_assert_eq!(&global, &merged);

        // And the exact bits agree with a full-column rank, the other
        // path a coordinator can answer from (its column cache).
        let columns = model.query_columns(&[q]).unwrap();
        let from_column = csrplus_serve::render::top_k_from_column(&columns[0], q, k);
        let no_diag: Vec<(usize, f64)> = from_column;
        prop_assert_eq!(merged.len(), no_diag.len());
        for (&(na, sa), &(nb, sb)) in merged.iter().zip(&no_diag) {
            prop_assert_eq!(na, nb);
            prop_assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }
}
