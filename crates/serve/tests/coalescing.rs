//! End-to-end proof of the tentpole property: `K` concurrent HTTP
//! requests for distinct nodes coalesce into **one** multi-source model
//! evaluation (observable via the `/metrics` evaluation counter) while
//! every client receives the byte-identical body an unbatched server
//! would have produced.

use csrplus_core::{CsrPlusConfig, CsrPlusModel};
use csrplus_graph::{generators::figure1_graph, TransitionMatrix};
use csrplus_serve::{legacy, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn model() -> CsrPlusModel {
    let t = TransitionMatrix::from_graph(&figure1_graph());
    CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3)).unwrap()
}

/// Issues one `GET` and returns `(status, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

/// Pulls the integer value of `"key":N` out of the `/metrics` JSON.
fn metric(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).unwrap_or_else(|| panic!("{key} missing in {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn concurrent_http_requests_coalesce_into_one_evaluation() {
    const K: usize = 4;
    let m = model();
    let reference = m.clone();
    let config = ServeConfig {
        workers: 2 * K,
        queue_depth: 64,
        max_batch: K,
        // Generous linger: the batch must fire on *fullness* (the K-th
        // arrival), making the single-evaluation assertion deterministic.
        linger: Duration::from_secs(5),
        cache_capacity: 0, // no cache: every request must reach the batcher
        cache_shards: 1,
        timeout: Duration::from_secs(30),
        max_requests: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(m, 0, config).unwrap();
    let addr = handle.addr();

    let barrier = Arc::new(Barrier::new(K));
    let clients: Vec<_> = (0..K)
        .map(|j| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (j, http_get(addr, &format!("/similarity?a=0&b={j}")))
            })
        })
        .collect();
    let answers: Vec<(usize, (u16, String))> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();

    // Every client got the byte-identical body of an unbatched server.
    for (j, (status, body)) in &answers {
        assert_eq!(*status, 200, "client {j}");
        let unbatched = legacy::route(&reference, &format!("GET /similarity?a=0&b={j} HTTP/1.1"))
            .unwrap_or_else(|e| panic!("legacy route failed: {e:?}"));
        assert_eq!(*body, unbatched, "client {j} answer differs from unbatched");
    }

    // The K column fetches ran as ONE multi-source evaluation.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(metric(&metrics, "model_evaluations"), 1, "metrics: {metrics}");
    assert_eq!(metric(&metrics, "batched_requests"), K as u64, "metrics: {metrics}");
    // The /metrics request itself is only counted after its body renders,
    // so it sees exactly the K similarity requests.
    assert_eq!(metric(&metrics, "requests_total"), K as u64, "metrics: {metrics}");

    handle.shutdown();
}

#[test]
fn cache_serves_repeat_queries_without_reevaluation() {
    let m = model();
    let config = ServeConfig {
        workers: 2,
        queue_depth: 16,
        linger: Duration::ZERO, // fire immediately: no coalescing, pure cache test
        cache_capacity: 16,
        cache_shards: 2,
        ..ServeConfig::default()
    };
    let handle = Server::start(m, 0, config).unwrap();
    let addr = handle.addr();

    let (s1, b1) = http_get(addr, "/similarity?a=1&b=2");
    let (s2, b2) = http_get(addr, "/similarity?a=1&b=2");
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2);

    let (_, metrics) = http_get(addr, "/metrics");
    assert_eq!(metric(&metrics, "model_evaluations"), 1, "metrics: {metrics}");
    assert_eq!(metric(&metrics, "hits"), 1, "metrics: {metrics}");
    assert_eq!(metric(&metrics, "misses"), 1, "metrics: {metrics}");

    handle.shutdown();
}
