//! Property tests for the TinyLFU frequency sketch: for arbitrary
//! access sequences and capacities, the sketch's estimates are pinned
//! between an exactly-mirrored reference counter map (count-min never
//! under-counts, and halving is monotone, so collisions only push
//! estimates *up*) and the total additions recorded (each addition
//! raises any one counter at most once, and aging halves counters and
//! the addition count together).

use csrplus_serve::tinylfu::FrequencySketch;
use proptest::prelude::*;
use std::collections::HashMap;

/// The sketch's aging schedule, mirrored: capacity × SAMPLE_FACTOR.
fn sample_window(capacity: usize) -> u64 {
    (capacity as u64).max(1) * 16
}

proptest! {
    #[test]
    fn estimates_sandwich_the_reference_counter_map(
        capacity in 1usize..64,
        accesses in proptest::collection::vec(0usize..512, 0..600),
    ) {
        let mut sketch = FrequencySketch::new(capacity);
        // The reference replays the exact semantics minus hash
        // collisions: per-key counts, halved (rounding down) at the
        // same sample boundaries the sketch ages at.
        let mut reference: HashMap<usize, u32> = HashMap::new();
        let sample = sample_window(capacity);
        let mut additions = 0u64;
        for &key in &accesses {
            sketch.record(key);
            *reference.entry(key).or_insert(0) += 1;
            additions += 1;
            if additions >= sample {
                for count in reference.values_mut() {
                    *count >>= 1;
                }
                additions /= 2;
            }
        }
        prop_assert_eq!(sketch.additions(), additions, "aging fired at the same boundaries");
        for (&key, &count) in &reference {
            let estimate = sketch.estimate(key);
            prop_assert!(
                estimate >= count,
                "key {} under-counted: estimate {} < true {}",
                key, estimate, count
            );
            prop_assert!(
                u64::from(estimate) <= additions,
                "key {} over-counted past the window: estimate {} > additions {}",
                key, estimate, additions
            );
        }
    }

    #[test]
    fn unaged_estimates_never_undercount(
        accesses in proptest::collection::vec(0usize..64, 0..500),
    ) {
        // Capacity 64 ⇒ sample window 1024 > any sequence here, so no
        // aging fires and the classic count-min bound applies directly.
        let mut sketch = FrequencySketch::new(64);
        let mut reference: HashMap<usize, u32> = HashMap::new();
        for &key in &accesses {
            sketch.record(key);
            *reference.entry(key).or_insert(0) += 1;
        }
        for (&key, &count) in &reference {
            prop_assert!(sketch.estimate(key) >= count);
        }
    }
}
