//! End-to-end proof of the snapshot layer's consistency contract:
//!
//! 1. **No torn reads.**  While a writer storms the server with edge
//!    batches (each publishing a new epoch), concurrent readers hammer
//!    query routes.  Every response must be byte-identical to the body
//!    a quiet server produced *at the epoch the response claims* — a
//!    request that mixed values from two snapshots could not match any
//!    single epoch's reference body.
//! 2. **Convergence.**  A random edit stream pushed through `POST
//!    /edges` leaves the served model within 5e-15 of a cold
//!    `precompute` on the final graph.  The server runs with a refresh
//!    budget of 1 — the production posture for correctness-critical
//!    deployments — so every edit exercises parse → validate → apply →
//!    rebuild → publish, and any lost, reordered, or misapplied edit
//!    shows up as a large score discrepancy.  (A single *unrefreshed*
//!    Brand update already carries ~1e-14 of floating-point noise at
//!    these score magnitudes; that incremental drift is measured and
//!    reported by the `serve_load` bench rather than asserted here.)
//!
//! CI runs this file under `CSRPLUS_THREADS=1` and `=4`: snapshot
//! consistency must not depend on the evaluation runtime's width.

use csrplus_core::dynamic::{DynamicConfig, DynamicCsrPlus};
use csrplus_core::{CsrPlusConfig, CsrPlusModel};
use csrplus_graph::{generators::figure1_graph, TransitionMatrix};
use csrplus_serve::{IngestConfig, ServeConfig, Server};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fresh dynamic engine over the paper's 6-node example, at full rank
/// so the factors are exact and every edit visibly moves the scores.
fn dynamic() -> DynamicCsrPlus {
    let config = DynamicConfig {
        base: CsrPlusConfig::with_rank(6),
        // The serving layer owns the rebuild policy in these tests.
        refresh_interval: usize::MAX,
    };
    DynamicCsrPlus::new(&figure1_graph(), config).expect("dynamic boot")
}

/// Issues one `GET` and returns `(status, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

/// Issues one `POST` with a body and returns `(status, body)`.
fn http_post(addr: SocketAddr, path: &str, payload: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

/// Extracts the trailing `,"epoch":E}` tag every ingesting-server
/// response carries.
fn epoch_of(body: &str) -> u64 {
    let at = body.rfind(",\"epoch\":").unwrap_or_else(|| panic!("untagged body: {body}"));
    body[at + ",\"epoch\":".len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// The edit script: every op changes the graph (figure 1 has neither
/// B→E nor F→A), so each `POST` publishes exactly one new epoch.
const OPS: [(&str, u32, u32); 8] = [
    ("insert", 1, 4),
    ("insert", 5, 0),
    ("delete", 1, 4),
    ("delete", 5, 0),
    ("insert", 1, 4),
    ("insert", 5, 0),
    ("delete", 1, 4),
    ("delete", 5, 0),
];

const PROBES: [&str; 3] = ["/similarity?a=4&b=1", "/query?nodes=1", "/topk?node=3&k=6"];

#[test]
fn query_storm_across_epoch_swaps_sees_single_epoch_snapshots() {
    // Pass 1 — reference bodies, one quiet server, edits applied
    // sequentially: expected[e][p] is the body probe `p` renders at
    // epoch `e`.
    let reference =
        Server::start_ingesting(dynamic(), 0, ServeConfig::default(), IngestConfig::default())
            .expect("reference server");
    let addr = reference.addr();
    let mut expected: Vec<Vec<String>> = Vec::with_capacity(OPS.len() + 1);
    let probe_all = |addr: SocketAddr, epoch: u64| -> Vec<String> {
        PROBES
            .iter()
            .map(|p| {
                let (status, body) = http_get(addr, p);
                assert_eq!(status, 200, "{p} at epoch {epoch}");
                assert_eq!(epoch_of(&body), epoch, "{p}: {body}");
                body
            })
            .collect()
    };
    expected.push(probe_all(addr, 0));
    for (i, (op, x, y)) in OPS.iter().enumerate() {
        let epoch = i as u64 + 1;
        let payload = format!("{{\"op\":\"{op}\",\"x\":{x},\"y\":{y}}}");
        let (status, body) = http_post(addr, "/edges", &payload);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, format!("{{\"applied\":1,\"ignored\":0,\"epoch\":{epoch}}}"));
        expected.push(probe_all(addr, epoch));
    }
    // Distinct graphs must render distinct bodies, or the storm below
    // proves nothing.
    assert_ne!(expected[0][0], expected[1][0], "the edit must move the probed score");
    reference.shutdown();

    // Pass 2 — a fresh server takes the same edits as a storm while
    // readers hammer the probes.  Precompute and Brand updates are
    // deterministic, so epoch `e` here holds the same model as epoch
    // `e` above, and every response must match expected[e] exactly.
    let storm =
        Server::start_ingesting(dynamic(), 0, ServeConfig::default(), IngestConfig::default())
            .expect("storm server");
    let addr = storm.addr();
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let done = Arc::clone(&done);
                let expected = &expected;
                scope.spawn(move || {
                    let mut seen = 0usize;
                    let mut turn = r; // stagger which probe each reader starts on
                    while !done.load(Ordering::Relaxed) || seen == 0 {
                        let probe_idx = turn % PROBES.len();
                        turn += 1;
                        let (status, body) = http_get(addr, PROBES[probe_idx]);
                        assert_eq!(status, 200, "{body}");
                        let epoch = epoch_of(&body) as usize;
                        assert!(epoch < expected.len(), "impossible epoch in {body}");
                        assert_eq!(
                            body, expected[epoch][probe_idx],
                            "torn read: reader {r} got a body inconsistent with epoch {epoch}"
                        );
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();
        for (op, x, y) in OPS {
            let payload = format!("{{\"op\":\"{op}\",\"x\":{x},\"y\":{y}}}");
            let (status, _) = http_post(addr, "/edges", &payload);
            assert_eq!(status, 200);
            // A short beat between publishes gives readers a chance to
            // observe intermediate epochs; correctness needs no timing.
            std::thread::sleep(Duration::from_millis(2));
        }
        done.store(true, Ordering::Relaxed);
        let observed: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(observed > 0, "readers ran");
    });
    // The storm landed every epoch.
    let (_, body) = http_get(addr, PROBES[0]);
    assert_eq!(epoch_of(&body), OPS.len() as u64);
    assert_eq!(body, expected[OPS.len()][0]);
    storm.shutdown();
}

/// Parses the `"similarity":V` value out of a response body.  f64's
/// `Display` is the shortest round-trip representation, so the parsed
/// value is bit-exact what the server computed.
fn similarity_of(body: &str) -> f64 {
    let at = body.find("\"similarity\":").expect("similarity body");
    body[at + "\"similarity\":".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
        .collect::<String>()
        .parse()
        .unwrap()
}

proptest! {
    // Each case boots a server and runs a cold precompute; keep the
    // count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_edit_streams_converge_to_cold_precompute(
        // (insert?, x, y-offset): y = (x + 1 + off) % 6 sidesteps
        // self-loops, which the edge routes never need to accept.
        ops in proptest::collection::vec((proptest::bool::ANY, 0u32..6, 0u32..5), 1..10),
    ) {
        let server = Server::start_ingesting(
            dynamic(),
            0,
            ServeConfig::default(),
            // Rebuild after every applied edit: the factors served at
            // the final epoch are a fresh precompute of the server's
            // own graph, so the 5e-15 bound pins graph-state fidelity.
            IngestConfig { refresh_budget: 1, checkpoint: None },
        ).expect("server");
        let addr = server.addr();

        // Replay the same stream locally only to *track the graph*; the
        // cold model below is precomputed from scratch on the result.
        let mut shadow = dynamic();
        for &(insert, x, off) in &ops {
            let y = (x + 1 + off) % 6;
            let op = if insert { "insert" } else { "delete" };
            let payload = format!("{{\"op\":\"{op}\",\"x\":{x},\"y\":{y}}}");
            let (status, body) = http_post(addr, "/edges", &payload);
            prop_assert_eq!(status, 200, "{}", body);
            let _ = if insert { shadow.insert_edge(x, y) } else { shadow.remove_edge(x, y) };
        }
        let t = TransitionMatrix::from_graph(&shadow.to_graph());
        let cold = CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(6)).expect("precompute");

        for a in 0..6usize {
            for b in 0..6usize {
                let (status, body) = http_get(addr, &format!("/similarity?a={a}&b={b}"));
                prop_assert_eq!(status, 200, "{}", body);
                let served = similarity_of(&body);
                let exact = cold.similarity(a, b).expect("similarity");
                prop_assert!(
                    (served - exact).abs() <= 5e-15,
                    "({a},{b}): served {served} vs cold {exact} after {} edits",
                    ops.len()
                );
            }
        }
        server.shutdown();
    }
}
