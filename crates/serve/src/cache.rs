//! A sharded LRU cache of similarity columns, keyed by node id and
//! tagged with the model epoch that produced them.
//!
//! Columns are `Arc<[f64]>`, so a hit hands the caller a shared view of
//! the stored column with no copy.  Sharding (`node % shards`) keeps
//! lock contention bounded under the worker pool; each shard is a
//! classic hash-map-plus-intrusive-list LRU with O(1) get/insert.
//!
//! **Epoch tagging** makes the cache safe under live model updates: a
//! lookup supplies the epoch its request's snapshot was loaded at, and
//! an entry cached under a different epoch is a miss — the stale entry
//! is dropped on the spot, so old epochs drain lazily as their nodes
//! are re-requested.  There is no global flush on publish and readers
//! never block; with ingestion disabled every request is epoch 0 and
//! the tag is inert.
//!
//! An optional **TTL** (off by default) bounds staleness the same way:
//! entries older than the TTL are misses and are dropped on lookup.
//!
//! With admission enabled ([`ColumnCache::with_admission`]) each shard
//! additionally keeps a TinyLFU [`FrequencySketch`]: lookups record the
//! requested node's popularity, and an insert that would evict only goes
//! through if the candidate has been asked for more often than the LRU
//! victim it displaces — one-hit wonders under Zipfian traffic stop
//! flushing the hot set.

use crate::metrics::Metrics;
use crate::tinylfu::FrequencySketch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One cached column, shared zero-copy with all readers.
pub type Column = Arc<[f64]>;

const NIL: usize = usize::MAX;

struct Entry {
    node: usize,
    /// Epoch of the snapshot this column was evaluated against.
    epoch: u64,
    /// When the column was stored (drives the optional TTL).
    stored_at: Instant,
    column: Column,
    prev: usize,
    next: usize,
}

/// Per-shard cache statistics, readable without the shard lock.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Lookups answered from this shard.
    pub hits: AtomicU64,
    /// Lookups this shard could not answer.
    pub misses: AtomicU64,
    /// Entries displaced to make room.
    pub evictions: AtomicU64,
    /// Inserts refused by the TinyLFU admission filter (candidate no
    /// more popular than the entry it would evict).
    pub admission_rejects: AtomicU64,
}

impl ShardStats {
    /// One JSON object: `{"hits":…,"misses":…,"evictions":…,"admission_rejects":…}`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"admission_rejects\":{}}}",
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.admission_rejects.load(Ordering::Relaxed),
        )
    }
}

/// Outcome of one insert attempt (drives the counters).
enum Inserted {
    Stored { evicted: bool },
    Rejected,
}

/// One LRU shard: slab of entries + map + most/least-recent pointers,
/// plus the optional admission sketch.
struct Shard {
    map: HashMap<usize, usize>,
    entries: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    sketch: Option<FrequencySketch>,
}

impl Shard {
    fn new(capacity: usize, admission: bool) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            sketch: (admission && capacity > 0).then(|| FrequencySketch::new(capacity)),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.entries[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entries[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Drops the entry at `idx` back to the free list.
    fn remove(&mut self, idx: usize) {
        self.unlink(idx);
        self.map.remove(&self.entries[idx].node);
        self.free.push(idx);
    }

    fn get(&mut self, node: usize, epoch: u64, ttl: Option<Duration>) -> Option<Column> {
        // The sketch counts *requests*, hits and misses alike — a node's
        // popularity is how often it is asked for, not how often it is
        // resident.
        if let Some(sketch) = &mut self.sketch {
            sketch.record(node);
        }
        let idx = *self.map.get(&node)?;
        // A column cached under another epoch answers for a model this
        // request is not seeing: drop it and miss.  Likewise an entry
        // past its TTL.  Dropping here (rather than on publish) is the
        // lazy drain — no flush, no reader blocking.
        if self.entries[idx].epoch != epoch
            || ttl.is_some_and(|ttl| self.entries[idx].stored_at.elapsed() >= ttl)
        {
            self.remove(idx);
            return None;
        }
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.entries[idx].column))
    }

    /// Inserts (or refreshes) a column, subject to the admission filter
    /// when one is configured.
    fn insert(&mut self, node: usize, epoch: u64, column: Column) -> Inserted {
        if let Some(&idx) = self.map.get(&node) {
            self.entries[idx].column = column;
            self.entries[idx].epoch = epoch;
            self.entries[idx].stored_at = Instant::now();
            self.unlink(idx);
            self.push_front(idx);
            return Inserted::Stored { evicted: false };
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            // TinyLFU admission: displacing the LRU victim must be paid
            // for with popularity.  A strict `>` keeps ties out — a
            // candidate seen exactly as often as the victim brings no
            // evidence it will be re-read sooner.
            if let Some(sketch) = &self.sketch {
                if sketch.estimate(node) <= sketch.estimate(self.entries[lru].node) {
                    return Inserted::Rejected;
                }
            }
            self.remove(lru);
            evicted = true;
        }
        let entry = Entry { node, epoch, stored_at: Instant::now(), column, prev: NIL, next: NIL };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx] = entry;
                idx
            }
            None => {
                self.entries.push(entry);
                self.entries.len() - 1
            }
        };
        self.map.insert(node, idx);
        self.push_front(idx);
        Inserted::Stored { evicted }
    }
}

/// The sharded cache.  `capacity == 0` disables caching entirely (every
/// lookup is a miss and inserts are dropped), which also makes batcher
/// evaluation counts deterministic in tests.
pub struct ColumnCache {
    shards: Vec<Mutex<Shard>>,
    stats: Vec<ShardStats>,
    metrics: Arc<Metrics>,
    ttl: Option<Duration>,
}

impl ColumnCache {
    /// A cache holding up to `capacity` columns spread over `shards`
    /// locks, with no admission filter.  Hit/miss/eviction counts are
    /// reported through `metrics`.
    pub fn new(capacity: usize, shards: usize, metrics: Arc<Metrics>) -> Self {
        Self::with_policies(capacity, shards, metrics, false, None)
    }

    /// [`ColumnCache::new`] with an optional TinyLFU admission filter:
    /// when `admission` is true every shard keeps a frequency sketch and
    /// refuses evicting inserts whose candidate is no more popular than
    /// the LRU victim.
    pub fn with_admission(
        capacity: usize,
        shards: usize,
        metrics: Arc<Metrics>,
        admission: bool,
    ) -> Self {
        Self::with_policies(capacity, shards, metrics, admission, None)
    }

    /// Full policy constructor: admission filter plus an optional TTL
    /// (entries older than `ttl` are misses and drain on lookup).
    pub fn with_policies(
        capacity: usize,
        shards: usize,
        metrics: Arc<Metrics>,
        admission: bool,
        ttl: Option<Duration>,
    ) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity / shards;
        // Distribute the remainder so total capacity is exact.
        let extra = capacity % shards;
        let stats = (0..shards).map(|_| ShardStats::default()).collect();
        let shards = (0..shards)
            .map(|i| Mutex::new(Shard::new(per_shard + usize::from(i < extra), admission)))
            .collect();
        ColumnCache { shards, stats, metrics, ttl }
    }

    fn shard(&self, node: usize) -> (&Mutex<Shard>, &ShardStats) {
        let i = node % self.shards.len();
        (&self.shards[i], &self.stats[i])
    }

    /// Looks up the column for `node` as seen at `epoch`, counting a hit
    /// or miss (globally and on the owning shard) and recording the
    /// request's popularity when admission is on.  Entries tagged with
    /// another epoch — or past the TTL — are misses and are dropped.
    pub fn get(&self, node: usize, epoch: u64) -> Option<Column> {
        let (shard, stats) = self.shard(node);
        let result = {
            let mut shard = shard.lock().expect("cache shard poisoned");
            if shard.capacity == 0 {
                None
            } else {
                shard.get(node, epoch, self.ttl)
            }
        };
        match result {
            Some(col) => {
                self.metrics.cache_hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(col)
            }
            None => {
                self.metrics.cache_misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the column for `node` evaluated at `epoch`, counting any
    /// eviction or admission rejection.
    pub fn insert(&self, node: usize, epoch: u64, column: Column) {
        let (shard, stats) = self.shard(node);
        let outcome = {
            let mut shard = shard.lock().expect("cache shard poisoned");
            if shard.capacity == 0 {
                Inserted::Stored { evicted: false }
            } else {
                shard.insert(node, epoch, column)
            }
        };
        match outcome {
            Inserted::Stored { evicted: true } => {
                self.metrics.cache_evictions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
            Inserted::Stored { evicted: false } => {}
            Inserted::Rejected => {
                self.metrics
                    .cache_admission_rejects
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.admission_rejects.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Per-shard statistics, indexed like the shard list.
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// The `"cache_shards"` JSON array for `GET /metrics`: one
    /// [`ShardStats::render_json`] object per shard.
    pub fn render_stats_json(&self) -> String {
        let shards: Vec<String> = self.stats.iter().map(ShardStats::render_json).collect();
        format!("[{}]", shards.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn col(v: f64) -> Column {
        Arc::from(vec![v].into_boxed_slice())
    }

    fn counts(m: &Metrics) -> (u64, u64, u64) {
        (
            m.cache_hits.load(Ordering::Relaxed),
            m.cache_misses.load(Ordering::Relaxed),
            m.cache_evictions.load(Ordering::Relaxed),
        )
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(2, 1, Arc::clone(&metrics));
        assert!(cache.get(1, 0).is_none());
        cache.insert(1, 0, col(1.0));
        cache.insert(2, 0, col(2.0));
        assert_eq!(cache.get(1, 0).unwrap()[0], 1.0);
        assert_eq!(counts(&metrics), (1, 1, 0));
        // Capacity 2: inserting a third evicts the LRU (node 2, since 1
        // was touched more recently).
        cache.insert(3, 0, col(3.0));
        assert_eq!(counts(&metrics).2, 1);
        assert!(cache.get(2, 0).is_none(), "node 2 was the LRU");
        assert!(cache.get(1, 0).is_some());
        assert!(cache.get(3, 0).is_some());
    }

    #[test]
    fn lru_order_follows_touches() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(3, 1, Arc::clone(&metrics));
        for n in 0..3 {
            cache.insert(n, 0, col(n as f64));
        }
        cache.get(0, 0); // order (MRU→LRU): 0, 2, 1
        cache.insert(3, 0, col(3.0)); // evicts 1
        assert!(cache.get(1, 0).is_none());
        for n in [0usize, 2, 3] {
            assert!(cache.get(n, 0).is_some(), "node {n} should survive");
        }
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(2, 1, Arc::clone(&metrics));
        cache.insert(1, 0, col(1.0));
        cache.insert(1, 0, col(10.0));
        assert_eq!(cache.get(1, 0).unwrap()[0], 10.0);
        assert_eq!(counts(&metrics).2, 0);
    }

    #[test]
    fn sharding_spreads_keys_and_capacity() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(8, 3, Arc::clone(&metrics));
        for n in 0..8 {
            cache.insert(n, 0, col(n as f64));
        }
        let live = (0..8).filter(|&n| cache.get(n, 0).is_some()).count();
        assert_eq!(live, 8, "8 columns fit an 8-column cache across shards");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(0, 4, Arc::clone(&metrics));
        cache.insert(1, 0, col(1.0));
        assert!(cache.get(1, 0).is_none());
        assert_eq!(counts(&metrics), (0, 1, 0));
    }

    #[test]
    fn stale_epoch_entries_are_misses_and_drain_lazily() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(4, 1, Arc::clone(&metrics));
        cache.insert(1, 0, col(1.0));
        cache.insert(2, 0, col(2.0));
        // A reader still on epoch 0 hits; a reader on epoch 1 misses and
        // drops the stale entry.
        assert!(cache.get(1, 0).is_some());
        assert!(cache.get(1, 1).is_none(), "epoch-0 column must not answer an epoch-1 request");
        // The stale entry is gone for everyone now — even the old epoch.
        assert!(cache.get(1, 0).is_none());
        // Untouched stale entries survive until requested: no flush.
        assert!(cache.get(2, 0).is_some());
        // Re-inserting under the new epoch serves the new epoch.
        cache.insert(1, 1, col(11.0));
        assert_eq!(cache.get(1, 1).unwrap()[0], 11.0);
        assert_eq!(metrics.cache_evictions.load(Ordering::Relaxed), 0, "drain is not an eviction");
    }

    #[test]
    fn ttl_expires_entries() {
        let metrics = Arc::new(Metrics::new());
        let cache =
            ColumnCache::with_policies(4, 1, Arc::clone(&metrics), false, Some(Duration::ZERO));
        cache.insert(1, 0, col(1.0));
        // TTL 0: every entry is expired by the time it is read.
        assert!(cache.get(1, 0).is_none());
        let cache = ColumnCache::with_policies(
            4,
            1,
            Arc::new(Metrics::new()),
            false,
            Some(Duration::from_secs(3600)),
        );
        cache.insert(1, 0, col(1.0));
        assert!(cache.get(1, 0).is_some(), "a one-hour TTL does not expire immediately");
    }
}
