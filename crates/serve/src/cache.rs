//! A sharded LRU cache of similarity columns, keyed by node id.
//!
//! Columns are `Arc<[f64]>`, so a hit hands the caller a shared view of
//! the stored column with no copy.  Sharding (`node % shards`) keeps
//! lock contention bounded under the worker pool; each shard is a
//! classic hash-map-plus-intrusive-list LRU with O(1) get/insert.

use crate::metrics::Metrics;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One cached column, shared zero-copy with all readers.
pub type Column = Arc<[f64]>;

const NIL: usize = usize::MAX;

struct Entry {
    node: usize,
    column: Column,
    prev: usize,
    next: usize,
}

/// One LRU shard: slab of entries + map + most/least-recent pointers.
struct Shard {
    map: HashMap<usize, usize>,
    entries: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.entries[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entries[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, node: usize) -> Option<Column> {
        let idx = *self.map.get(&node)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.entries[idx].column))
    }

    /// Inserts (or refreshes) a column; returns whether an eviction
    /// happened.
    fn insert(&mut self, node: usize, column: Column) -> bool {
        if let Some(&idx) = self.map.get(&node) {
            self.entries[idx].column = column;
            self.unlink(idx);
            self.push_front(idx);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.entries[lru].node);
            self.free.push(lru);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx] = Entry { node, column, prev: NIL, next: NIL };
                idx
            }
            None => {
                self.entries.push(Entry { node, column, prev: NIL, next: NIL });
                self.entries.len() - 1
            }
        };
        self.map.insert(node, idx);
        self.push_front(idx);
        evicted
    }
}

/// The sharded cache.  `capacity == 0` disables caching entirely (every
/// lookup is a miss and inserts are dropped), which also makes batcher
/// evaluation counts deterministic in tests.
pub struct ColumnCache {
    shards: Vec<Mutex<Shard>>,
    metrics: Arc<Metrics>,
}

impl ColumnCache {
    /// A cache holding up to `capacity` columns spread over `shards`
    /// locks.  Hit/miss/eviction counts are reported through `metrics`.
    pub fn new(capacity: usize, shards: usize, metrics: Arc<Metrics>) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity / shards;
        // Distribute the remainder so total capacity is exact.
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| Mutex::new(Shard::new(per_shard + usize::from(i < extra))))
            .collect();
        ColumnCache { shards, metrics }
    }

    fn shard(&self, node: usize) -> &Mutex<Shard> {
        &self.shards[node % self.shards.len()]
    }

    /// Looks up the column for `node`, counting a hit or miss.
    pub fn get(&self, node: usize) -> Option<Column> {
        let result = {
            let mut shard = self.shard(node).lock().expect("cache shard poisoned");
            if shard.capacity == 0 {
                None
            } else {
                shard.get(node)
            }
        };
        match result {
            Some(col) => {
                self.metrics.cache_hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Some(col)
            }
            None => {
                self.metrics.cache_misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the column for `node`, counting any eviction.
    pub fn insert(&self, node: usize, column: Column) {
        let evicted = {
            let mut shard = self.shard(node).lock().expect("cache shard poisoned");
            if shard.capacity == 0 {
                false
            } else {
                shard.insert(node, column)
            }
        };
        if evicted {
            self.metrics.cache_evictions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn col(v: f64) -> Column {
        Arc::from(vec![v].into_boxed_slice())
    }

    fn counts(m: &Metrics) -> (u64, u64, u64) {
        (
            m.cache_hits.load(Ordering::Relaxed),
            m.cache_misses.load(Ordering::Relaxed),
            m.cache_evictions.load(Ordering::Relaxed),
        )
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(2, 1, Arc::clone(&metrics));
        assert!(cache.get(1).is_none());
        cache.insert(1, col(1.0));
        cache.insert(2, col(2.0));
        assert_eq!(cache.get(1).unwrap()[0], 1.0);
        assert_eq!(counts(&metrics), (1, 1, 0));
        // Capacity 2: inserting a third evicts the LRU (node 2, since 1
        // was touched more recently).
        cache.insert(3, col(3.0));
        assert_eq!(counts(&metrics).2, 1);
        assert!(cache.get(2).is_none(), "node 2 was the LRU");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn lru_order_follows_touches() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(3, 1, Arc::clone(&metrics));
        for n in 0..3 {
            cache.insert(n, col(n as f64));
        }
        cache.get(0); // order (MRU→LRU): 0, 2, 1
        cache.insert(3, col(3.0)); // evicts 1
        assert!(cache.get(1).is_none());
        for n in [0usize, 2, 3] {
            assert!(cache.get(n).is_some(), "node {n} should survive");
        }
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(2, 1, Arc::clone(&metrics));
        cache.insert(1, col(1.0));
        cache.insert(1, col(10.0));
        assert_eq!(cache.get(1).unwrap()[0], 10.0);
        assert_eq!(counts(&metrics).2, 0);
    }

    #[test]
    fn sharding_spreads_keys_and_capacity() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(8, 3, Arc::clone(&metrics));
        for n in 0..8 {
            cache.insert(n, col(n as f64));
        }
        let live = (0..8).filter(|&n| cache.get(n).is_some()).count();
        assert_eq!(live, 8, "8 columns fit an 8-column cache across shards");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(0, 4, Arc::clone(&metrics));
        cache.insert(1, col(1.0));
        assert!(cache.get(1).is_none());
        assert_eq!(counts(&metrics), (0, 1, 0));
    }
}
