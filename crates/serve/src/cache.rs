//! A sharded LRU cache of similarity columns, keyed by node id.
//!
//! Columns are `Arc<[f64]>`, so a hit hands the caller a shared view of
//! the stored column with no copy.  Sharding (`node % shards`) keeps
//! lock contention bounded under the worker pool; each shard is a
//! classic hash-map-plus-intrusive-list LRU with O(1) get/insert.
//!
//! With admission enabled ([`ColumnCache::with_admission`]) each shard
//! additionally keeps a TinyLFU [`FrequencySketch`]: lookups record the
//! requested node's popularity, and an insert that would evict only goes
//! through if the candidate has been asked for more often than the LRU
//! victim it displaces — one-hit wonders under Zipfian traffic stop
//! flushing the hot set.

use crate::metrics::Metrics;
use crate::tinylfu::FrequencySketch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached column, shared zero-copy with all readers.
pub type Column = Arc<[f64]>;

const NIL: usize = usize::MAX;

struct Entry {
    node: usize,
    column: Column,
    prev: usize,
    next: usize,
}

/// Per-shard cache statistics, readable without the shard lock.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Lookups answered from this shard.
    pub hits: AtomicU64,
    /// Lookups this shard could not answer.
    pub misses: AtomicU64,
    /// Entries displaced to make room.
    pub evictions: AtomicU64,
    /// Inserts refused by the TinyLFU admission filter (candidate no
    /// more popular than the entry it would evict).
    pub admission_rejects: AtomicU64,
}

impl ShardStats {
    /// One JSON object: `{"hits":…,"misses":…,"evictions":…,"admission_rejects":…}`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"admission_rejects\":{}}}",
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.admission_rejects.load(Ordering::Relaxed),
        )
    }
}

/// Outcome of one insert attempt (drives the counters).
enum Inserted {
    Stored { evicted: bool },
    Rejected,
}

/// One LRU shard: slab of entries + map + most/least-recent pointers,
/// plus the optional admission sketch.
struct Shard {
    map: HashMap<usize, usize>,
    entries: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    sketch: Option<FrequencySketch>,
}

impl Shard {
    fn new(capacity: usize, admission: bool) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            sketch: (admission && capacity > 0).then(|| FrequencySketch::new(capacity)),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.entries[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entries[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, node: usize) -> Option<Column> {
        // The sketch counts *requests*, hits and misses alike — a node's
        // popularity is how often it is asked for, not how often it is
        // resident.
        if let Some(sketch) = &mut self.sketch {
            sketch.record(node);
        }
        let idx = *self.map.get(&node)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.entries[idx].column))
    }

    /// Inserts (or refreshes) a column, subject to the admission filter
    /// when one is configured.
    fn insert(&mut self, node: usize, column: Column) -> Inserted {
        if let Some(&idx) = self.map.get(&node) {
            self.entries[idx].column = column;
            self.unlink(idx);
            self.push_front(idx);
            return Inserted::Stored { evicted: false };
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            // TinyLFU admission: displacing the LRU victim must be paid
            // for with popularity.  A strict `>` keeps ties out — a
            // candidate seen exactly as often as the victim brings no
            // evidence it will be re-read sooner.
            if let Some(sketch) = &self.sketch {
                if sketch.estimate(node) <= sketch.estimate(self.entries[lru].node) {
                    return Inserted::Rejected;
                }
            }
            self.unlink(lru);
            self.map.remove(&self.entries[lru].node);
            self.free.push(lru);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx] = Entry { node, column, prev: NIL, next: NIL };
                idx
            }
            None => {
                self.entries.push(Entry { node, column, prev: NIL, next: NIL });
                self.entries.len() - 1
            }
        };
        self.map.insert(node, idx);
        self.push_front(idx);
        Inserted::Stored { evicted }
    }
}

/// The sharded cache.  `capacity == 0` disables caching entirely (every
/// lookup is a miss and inserts are dropped), which also makes batcher
/// evaluation counts deterministic in tests.
pub struct ColumnCache {
    shards: Vec<Mutex<Shard>>,
    stats: Vec<ShardStats>,
    metrics: Arc<Metrics>,
}

impl ColumnCache {
    /// A cache holding up to `capacity` columns spread over `shards`
    /// locks, with no admission filter.  Hit/miss/eviction counts are
    /// reported through `metrics`.
    pub fn new(capacity: usize, shards: usize, metrics: Arc<Metrics>) -> Self {
        Self::with_admission(capacity, shards, metrics, false)
    }

    /// [`ColumnCache::new`] with an optional TinyLFU admission filter:
    /// when `admission` is true every shard keeps a frequency sketch and
    /// refuses evicting inserts whose candidate is no more popular than
    /// the LRU victim.
    pub fn with_admission(
        capacity: usize,
        shards: usize,
        metrics: Arc<Metrics>,
        admission: bool,
    ) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity / shards;
        // Distribute the remainder so total capacity is exact.
        let extra = capacity % shards;
        let stats = (0..shards).map(|_| ShardStats::default()).collect();
        let shards = (0..shards)
            .map(|i| Mutex::new(Shard::new(per_shard + usize::from(i < extra), admission)))
            .collect();
        ColumnCache { shards, stats, metrics }
    }

    fn shard(&self, node: usize) -> (&Mutex<Shard>, &ShardStats) {
        let i = node % self.shards.len();
        (&self.shards[i], &self.stats[i])
    }

    /// Looks up the column for `node`, counting a hit or miss (globally
    /// and on the owning shard) and recording the request's popularity
    /// when admission is on.
    pub fn get(&self, node: usize) -> Option<Column> {
        let (shard, stats) = self.shard(node);
        let result = {
            let mut shard = shard.lock().expect("cache shard poisoned");
            if shard.capacity == 0 {
                None
            } else {
                shard.get(node)
            }
        };
        match result {
            Some(col) => {
                self.metrics.cache_hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(col)
            }
            None => {
                self.metrics.cache_misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the column for `node`, counting any eviction or admission
    /// rejection.
    pub fn insert(&self, node: usize, column: Column) {
        let (shard, stats) = self.shard(node);
        let outcome = {
            let mut shard = shard.lock().expect("cache shard poisoned");
            if shard.capacity == 0 {
                Inserted::Stored { evicted: false }
            } else {
                shard.insert(node, column)
            }
        };
        match outcome {
            Inserted::Stored { evicted: true } => {
                self.metrics.cache_evictions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
            Inserted::Stored { evicted: false } => {}
            Inserted::Rejected => {
                self.metrics
                    .cache_admission_rejects
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.admission_rejects.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Per-shard statistics, indexed like the shard list.
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// The `"cache_shards"` JSON array for `GET /metrics`: one
    /// [`ShardStats::render_json`] object per shard.
    pub fn render_stats_json(&self) -> String {
        let shards: Vec<String> = self.stats.iter().map(ShardStats::render_json).collect();
        format!("[{}]", shards.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn col(v: f64) -> Column {
        Arc::from(vec![v].into_boxed_slice())
    }

    fn counts(m: &Metrics) -> (u64, u64, u64) {
        (
            m.cache_hits.load(Ordering::Relaxed),
            m.cache_misses.load(Ordering::Relaxed),
            m.cache_evictions.load(Ordering::Relaxed),
        )
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(2, 1, Arc::clone(&metrics));
        assert!(cache.get(1).is_none());
        cache.insert(1, col(1.0));
        cache.insert(2, col(2.0));
        assert_eq!(cache.get(1).unwrap()[0], 1.0);
        assert_eq!(counts(&metrics), (1, 1, 0));
        // Capacity 2: inserting a third evicts the LRU (node 2, since 1
        // was touched more recently).
        cache.insert(3, col(3.0));
        assert_eq!(counts(&metrics).2, 1);
        assert!(cache.get(2).is_none(), "node 2 was the LRU");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn lru_order_follows_touches() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(3, 1, Arc::clone(&metrics));
        for n in 0..3 {
            cache.insert(n, col(n as f64));
        }
        cache.get(0); // order (MRU→LRU): 0, 2, 1
        cache.insert(3, col(3.0)); // evicts 1
        assert!(cache.get(1).is_none());
        for n in [0usize, 2, 3] {
            assert!(cache.get(n).is_some(), "node {n} should survive");
        }
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(2, 1, Arc::clone(&metrics));
        cache.insert(1, col(1.0));
        cache.insert(1, col(10.0));
        assert_eq!(cache.get(1).unwrap()[0], 10.0);
        assert_eq!(counts(&metrics).2, 0);
    }

    #[test]
    fn sharding_spreads_keys_and_capacity() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(8, 3, Arc::clone(&metrics));
        for n in 0..8 {
            cache.insert(n, col(n as f64));
        }
        let live = (0..8).filter(|&n| cache.get(n).is_some()).count();
        assert_eq!(live, 8, "8 columns fit an 8-column cache across shards");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let metrics = Arc::new(Metrics::new());
        let cache = ColumnCache::new(0, 4, Arc::clone(&metrics));
        cache.insert(1, col(1.0));
        assert!(cache.get(1).is_none());
        assert_eq!(counts(&metrics), (0, 1, 0));
    }
}
