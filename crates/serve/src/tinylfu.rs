//! A TinyLFU-style frequency sketch for cache admission.
//!
//! Under Zipfian traffic a plain LRU is polluted by one-hit wonders:
//! every cold miss inserts a column that evicts something hotter and is
//! never read again.  TinyLFU (Einziger et al.) fixes this with a cheap
//! approximate frequency filter in front of the LRU — a candidate is
//! admitted only if it has been *asked for* more often than the entry it
//! would evict.
//!
//! The sketch is a count-min: [`FrequencySketch::DEPTH`] rows of
//! power-of-two width, each key hashed to one counter per row, and the
//! estimate is the minimum over rows — an upper bound on the true count
//! that over-counts only on hash collisions, never under-counts.  To
//! keep the estimates fresh (a node hot an hour ago must not outrank a
//! node hot now) every counter is halved once the total number of
//! recorded accesses reaches a sample window proportional to the cache
//! capacity, so frequencies decay geometrically with age.

/// Count-min frequency sketch with periodic aging.
///
/// Not internally synchronised: the column cache keeps one sketch per
/// LRU shard, mutated under that shard's lock.
#[derive(Debug)]
pub struct FrequencySketch {
    /// `DEPTH` rows of `width` counters, stored flat.
    counters: Vec<u32>,
    /// Row width minus one (width is a power of two).
    mask: u64,
    /// Accesses recorded since the last aging pass.
    additions: u64,
    /// Aging threshold: when `additions` reaches this, halve everything.
    sample: u64,
}

impl FrequencySketch {
    /// Independent hash rows: more rows tighten the collision bound, at
    /// proportional memory and per-access cost.  Four is the classic
    /// count-min compromise.
    pub const DEPTH: usize = 4;

    /// Counters per row relative to capacity: 8× leaves collision noise
    /// well below the hot/cold frequency gap admission needs to see.
    const WIDTH_FACTOR: usize = 8;

    /// Aging window relative to capacity (the TinyLFU "sample size"):
    /// a counter survives roughly `log₂(window)` halvings, bounding how
    /// long stale popularity lingers.
    const SAMPLE_FACTOR: u64 = 16;

    /// A sketch sized for a cache holding `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let width = (capacity.max(1) * Self::WIDTH_FACTOR).next_power_of_two();
        FrequencySketch {
            counters: vec![0; width * Self::DEPTH],
            mask: width as u64 - 1,
            additions: 0,
            sample: (capacity as u64).max(1) * Self::SAMPLE_FACTOR,
        }
    }

    /// One counter index per row for `key` — independent mixes of one
    /// 64-bit avalanche (SplitMix64 finalizer) seeded per row.
    fn index(&self, key: usize, row: usize) -> usize {
        const SEEDS: [u64; FrequencySketch::DEPTH] = [
            0x9E37_79B9_7F4A_7C15,
            0xBF58_476D_1CE4_E5B9,
            0x94D0_49BB_1331_11EB,
            0xD6E8_FEB8_6659_FD93,
        ];
        let mut x = key as u64 ^ SEEDS[row];
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        row * (self.mask as usize + 1) + (x & self.mask) as usize
    }

    /// Records one access to `key`, aging all counters when the sample
    /// window fills.
    pub fn record(&mut self, key: usize) {
        for row in 0..Self::DEPTH {
            let i = self.index(key, row);
            self.counters[i] = self.counters[i].saturating_add(1);
        }
        self.additions += 1;
        if self.additions >= self.sample {
            self.age();
        }
    }

    /// The frequency estimate for `key`: an upper bound on the number of
    /// accesses recorded since roughly the last aging window.
    pub fn estimate(&self, key: usize) -> u32 {
        (0..Self::DEPTH).map(|row| self.counters[self.index(key, row)]).min().unwrap_or(0)
    }

    /// Halves every counter (rounding down) — geometric decay of stale
    /// popularity.
    fn age(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
        self.additions /= 2;
    }

    /// Accesses recorded since the last aging pass (test/diagnostic).
    pub fn additions(&self) -> u64 {
        self.additions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_upper_bound_true_counts() {
        let mut s = FrequencySketch::new(64);
        for i in 0..50usize {
            for _ in 0..=i % 7 {
                s.record(i);
            }
        }
        for i in 0..50usize {
            let true_count = (i % 7 + 1) as u32;
            assert!(s.estimate(i) >= true_count, "key {i}: {} < {true_count}", s.estimate(i));
        }
        assert_eq!(s.estimate(999_999), 0, "an unseen key in a sparse sketch");
    }

    #[test]
    fn hot_keys_outrank_one_hit_wonders() {
        let mut s = FrequencySketch::new(128);
        for _ in 0..40 {
            s.record(7);
        }
        s.record(13);
        assert!(s.estimate(7) > s.estimate(13));
    }

    #[test]
    fn aging_halves_counters_at_the_sample_window() {
        let mut s = FrequencySketch::new(1); // sample window = 16
        for _ in 0..15 {
            s.record(3);
        }
        assert_eq!(s.estimate(3), 15);
        s.record(3); // 16th access trips the aging pass
        assert_eq!(s.estimate(3), 8, "16 accesses halve to 8");
        assert_eq!(s.additions(), 8);
    }
}
