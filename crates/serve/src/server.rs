//! The pooled server: accept loop → bounded admission queue → worker
//! pool, with the micro-[`batcher`](crate::batcher) and the column
//! [`cache`](crate::cache) behind the query routes and [`Metrics`] at
//! `GET /metrics`.
//!
//! Routes are the same as the legacy server (`/health`, `/similarity`,
//! `/topk`, `/query`) plus `/metrics`; bodies for identical scores are
//! byte-identical to the legacy ones (shared [`crate::render`]).
//!
//! Every request loads one epoch-versioned snapshot from the
//! [`SnapshotHandle`] up front and answers entirely against it, so a
//! response can never mix two model versions even while the live
//! ingestion thread ([`Server::start_ingesting`], `POST /edges`) is
//! publishing new epochs mid-flight.  With ingestion off the handle
//! stays at epoch 0 forever and bodies are byte-identical to the
//! static-model server.

use crate::batcher::{Batcher, ColumnError};
use crate::cache::{Column, ColumnCache};
use crate::coordinator::Coordinator;
use crate::gauge::LoadGauge;
use crate::http::{self, Target};
use crate::ingest::{self, IngestConfig, Ingestor};
use crate::metrics::{Metrics, Route};
use crate::pool::WorkerPool;
use crate::render;
use crate::snapshot::{Snapshot, SnapshotHandle};
use crate::wire;
use csrplus_core::dynamic::DynamicCsrPlus;
use csrplus_core::CsrPlusModel;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads serving requests.
    pub workers: usize,
    /// Bounded admission queue depth; connections beyond it get `503`.
    pub queue_depth: usize,
    /// Maximum `|Q|` coalesced into one multi-source evaluation.
    pub max_batch: usize,
    /// How long the first request of a batch waits for company.
    pub linger: Duration,
    /// Column-cache capacity in columns (`0` disables the cache).
    pub cache_capacity: usize,
    /// Column-cache shard count.
    pub cache_shards: usize,
    /// Per-request budget: socket reads/writes and column waits.
    pub timeout: Duration,
    /// Serve this many connections then exit (used by tests/benches).
    pub max_requests: Option<usize>,
    /// Shard mode: serve only internal rows `lo..hi` and expose the
    /// `/shard/*` routes (one shard of a scatter-gather deployment).
    pub shard_rows: Option<(usize, usize)>,
    /// Coordinator mode: fan queries out to these shard servers
    /// (`host:port`) instead of evaluating locally.  Empty ⇒ local.
    pub shards: Vec<String>,
    /// Coordinator: per-shard request budget.
    pub shard_timeout: Duration,
    /// Coordinator: delay before hedging a straggling shard request
    /// with a second identical one (zero disables hedging).
    pub hedge: Duration,
    /// TinyLFU admission control in front of the column cache: an
    /// evicting insert must beat the LRU victim on estimated frequency
    /// or it is rejected.  Off ⇒ plain LRU (today's behaviour).
    pub cache_admission: bool,
    /// Scale the batch linger with admission-queue pressure: zero when
    /// the queue is idle, stretching toward `linger` as it fills.  Off
    /// ⇒ the fixed `linger` always applies.
    pub adaptive_linger: bool,
    /// Pressure-degraded rank: requests that opt in (`degraded=allow`
    /// or `max_rank=T`) are answered from at most this many factor
    /// columns while the queue is at the watermark.  `None` disables
    /// the policy (opt-in parameters are accepted but inert).
    pub degrade_rank: Option<usize>,
    /// Queue depth at or above which opted-in requests degrade.  The
    /// default `0` degrades every opted-in request once the policy is
    /// enabled (deterministic, and what a saturated queue converges to).
    pub degrade_watermark: usize,
    /// Column-cache entry time-to-live.  `None` (the default) keeps
    /// entries until eviction — today's behaviour; `Some(ttl)` expires
    /// them lazily on lookup, which bounds staleness for deployments
    /// that mutate the model out-of-band.
    pub cache_ttl: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // Size the HTTP worker pool from the shared `csrplus-par` limit
        // (CSRPLUS_THREADS / --threads / available_parallelism) instead
        // of an independent hardware read: batch evaluation fans its
        // kernels out on that same pool, so an independent count would
        // oversubscribe the cores the kernels are already using.
        let workers = csrplus_par::threads();
        ServeConfig {
            workers,
            queue_depth: workers * 16,
            max_batch: 32,
            linger: Duration::from_micros(200),
            cache_capacity: 1024,
            cache_shards: 8,
            timeout: Duration::from_secs(5),
            max_requests: None,
            shard_rows: None,
            shards: Vec::new(),
            shard_timeout: Duration::from_secs(2),
            hedge: Duration::from_millis(50),
            cache_admission: false,
            adaptive_linger: false,
            degrade_rank: None,
            degrade_watermark: 0,
            cache_ttl: None,
        }
    }
}

/// How queries are answered: locally (optionally over one row slice) or
/// by scatter-gathering over shard servers.
enum Engine {
    Local(Batcher),
    Sharded(Box<Coordinator>),
}

/// Everything a worker needs to answer one connection.
struct Ctx {
    /// The epoch-versioned model: workers `load()` it once per request
    /// and answer entirely against that snapshot.
    handle: Arc<SnapshotHandle>,
    engine: Engine,
    metrics: Arc<Metrics>,
    cache: Arc<ColumnCache>,
    gauge: Arc<LoadGauge>,
    timeout: Duration,
    /// Set in shard mode: the internal row range this server owns.
    shard_rows: Option<(usize, usize)>,
    /// Pressure-degraded rank policy (see [`ServeConfig::degrade_rank`]).
    degrade_rank: Option<usize>,
    degrade_watermark: usize,
    /// The live update thread behind `POST /edges`; `None` means
    /// ingestion is off and responses never carry an epoch tag.
    ingest: Option<Ingestor>,
}

/// The pooled, batching server.  [`Server::start`] binds and returns a
/// [`ServerHandle`]; the accept loop runs on a background thread.
pub struct Server;

impl Server {
    /// Binds `127.0.0.1:port` (0 ⇒ ephemeral), announces the address on
    /// stdout (`listening on http://…`, the line the CLI harness
    /// parses), and starts accepting.
    pub fn start(
        model: CsrPlusModel,
        port: u16,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::boot(SnapshotHandle::new(Arc::new(model)), port, config, None)
    }

    /// [`Server::start`] with live edge ingestion: the server boots from
    /// `dynamic`'s current model as epoch 0, accepts `POST /edges`, and
    /// a dedicated update thread publishes each applied batch as a new
    /// epoch.  Every response then carries an `"epoch"` field naming the
    /// snapshot it was answered from.
    pub fn start_ingesting(
        dynamic: DynamicCsrPlus,
        port: u16,
        config: ServeConfig,
        ingest: IngestConfig,
    ) -> std::io::Result<ServerHandle> {
        let handle = SnapshotHandle::new(Arc::new(dynamic.model().clone()));
        Self::boot(handle, port, config, Some((dynamic, ingest)))
    }

    fn boot(
        handle: SnapshotHandle,
        port: u16,
        config: ServeConfig,
        ingest: Option<(DynamicCsrPlus, IngestConfig)>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;

        let metrics = Arc::new(Metrics::new());
        let handle = Arc::new(handle);
        let gauge = Arc::new(LoadGauge::new(config.queue_depth));
        let cache = Arc::new(ColumnCache::with_policies(
            config.cache_capacity,
            config.cache_shards,
            Arc::clone(&metrics),
            config.cache_admission,
            config.cache_ttl,
        ));
        let boot_n = handle.load().model().n();
        if let Some((lo, hi)) = config.shard_rows {
            if lo > hi || hi > boot_n {
                return Err(std::io::Error::other(format!(
                    "shard row range {lo}..{hi} invalid for n = {boot_n}"
                )));
            }
        }
        let engine = if config.shards.is_empty() {
            Engine::Local(Batcher::with_policies(
                Arc::clone(&handle),
                Arc::clone(&cache),
                Arc::clone(&metrics),
                config.max_batch,
                config.linger,
                config.shard_rows,
                Some(Arc::clone(&gauge)),
                config.adaptive_linger,
            ))
        } else {
            Engine::Sharded(Box::new(
                Coordinator::connect(
                    Arc::clone(&handle),
                    &config.shards,
                    config.shard_timeout,
                    config.hedge,
                    Arc::clone(&cache),
                )
                .map_err(std::io::Error::other)?,
            ))
        };
        let ingest = ingest.map(|(dynamic, icfg)| {
            Ingestor::start(dynamic, Arc::clone(&handle), Arc::clone(&metrics), icfg)
        });
        let ctx = Arc::new(Ctx {
            handle,
            engine,
            metrics: Arc::clone(&metrics),
            cache,
            gauge: Arc::clone(&gauge),
            timeout: config.timeout,
            shard_rows: config.shard_rows,
            degrade_rank: config.degrade_rank,
            degrade_watermark: config.degrade_watermark,
            ingest,
        });
        let pool =
            Arc::new(WorkerPool::with_gauge(config.workers, config.queue_depth, Some(gauge)));
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let ctx = Arc::clone(&ctx);
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            let max_requests = config.max_requests;
            std::thread::Builder::new()
                .name("csrplus-accept".to_string())
                .spawn(move || accept_loop(&listener, &ctx, &pool, &stop, max_requests))?
        };

        println!("listening on http://{addr}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();

        Ok(ServerHandle {
            addr,
            metrics,
            stop,
            accept: Some(accept),
            pool: Some(pool),
            ctx: Some(ctx),
        })
    }
}

/// A running server: address, live metrics, and teardown.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<Metrics>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pool: Option<Arc<WorkerPool>>,
    ctx: Option<Arc<Ctx>>,
}

impl ServerHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics for this server.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Blocks until the accept loop exits on its own (`max_requests`
    /// reached), then drains and tears down gracefully.
    pub fn join(mut self) {
        self.teardown();
    }

    /// Stops accepting, drains admitted connections, answers every
    /// pending batched request, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.teardown();
    }

    fn stop_accepting(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    fn teardown(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Drop order is the drain order: the pool first (its Drop joins
        // workers after the queue empties — in-flight requests may still
        // use the batcher), then the context (its Drop shuts the batcher
        // down, which answers anything still pending).
        self.pool.take();
        self.ctx.take();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_accepting();
        self.teardown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    ctx: &Arc<Ctx>,
    pool: &Arc<WorkerPool>,
    stop: &AtomicBool,
    max_requests: Option<usize>,
) {
    let served = AtomicUsize::new(0);
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                eprintln!("accept error: {e}");
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return; // the wake-up connection itself
        }
        // Responses are one small write per request; without NODELAY,
        // Nagle holds the final segment until the peer ACKs (~40 ms
        // delayed-ACK class on loopback), dwarfing the evaluation.
        let _ = stream.set_nodelay(true);
        if !ctx.timeout.is_zero() {
            let _ = stream.set_read_timeout(Some(ctx.timeout));
            let _ = stream.set_write_timeout(Some(ctx.timeout));
        }
        let shed = stream.try_clone();
        let peer = stream.peer_addr();
        let job = {
            let ctx = Arc::clone(ctx);
            Box::new(move || handle_connection(&ctx, stream))
        };
        if let Err(job) = pool.try_submit(job) {
            // Shed load: answer 503 right here instead of queueing, with
            // `Retry-After` backpressure advice scaled to queue pressure
            // (a full queue advises a longer backoff than a closing one).
            ctx.metrics.queue_rejections.fetch_add(1, Ordering::Relaxed);
            ctx.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
            // Fairness: a client that keeps getting shed is advised to
            // back off progressively harder than a first-time arrival —
            // every 4 sheds from the same peer adds a second.  The first
            // few sheds advise exactly what they always did.
            let client = peer.map(|a| a.ip().to_string()).unwrap_or_else(|_| "unknown".into());
            let client_sheds = ctx.metrics.record_shed_for_client(&client);
            let retry_s = 1
                + (ctx.gauge.depth() / ctx.gauge.capacity()) as u64
                + client_sheds.saturating_sub(1) / 4;
            ctx.metrics.shed_last_retry_after_s.store(retry_s, Ordering::Relaxed);
            if let Ok(stream) = shed {
                let _ =
                    http::write_error_retry_after(&stream, 503, "admission queue full", retry_s);
            }
            drop(job);
        }
        // Failed accepts deliberately don't count (see legacy notes).
        let served_now = served.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(max) = max_requests {
            if served_now >= max {
                return;
            }
        }
    }
}

fn handle_connection(ctx: &Ctx, stream: TcpStream) {
    let start = Instant::now();
    let raw = match stream.try_clone().and_then(http::read_request_with_body) {
        Ok(raw) => raw,
        Err(_) => {
            ctx.metrics.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let (route, result) = dispatch(ctx, raw.line.trim(), &raw.body, start);
    let outcome = match &result {
        Ok(body) => http::write_response(&stream, 200, body),
        Err((code, msg)) => {
            ctx.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
            http::write_error(&stream, *code, msg)
        }
    };
    if outcome.is_err() {
        ctx.metrics.io_errors.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(route) = route {
        ctx.metrics.record_request(route, start.elapsed());
    }
}

/// Routes one request.  Returns the [`Route`] (when recognised, for
/// metrics) and the response body or `(code, message)` error.
fn dispatch(
    ctx: &Ctx,
    request_line: &str,
    body: &str,
    start: Instant,
) -> (Option<Route>, Result<String, (u16, String)>) {
    let (method, target) = match http::parse_request_line_methods(request_line, &["GET", "POST"]) {
        Ok(t) => t,
        Err(e) => return (None, Err(e)),
    };
    let route = match target.path.as_str() {
        "/health" => Route::Health,
        "/metrics" => Route::Metrics,
        "/similarity" => Route::Similarity,
        "/topk" => Route::TopK,
        "/query" => Route::Query,
        "/shard/range" => Route::ShardRange,
        "/shard/columns" => Route::ShardColumns,
        "/shard/topk" => Route::ShardTopK,
        "/edges" => Route::Edges,
        other => return (None, Err((404, format!("no route {other:?}")))),
    };
    // `/edges` mutates and is POST-only; everything else is GET-only.
    let edges = matches!(route, Route::Edges);
    if edges != (method == "POST") {
        let err = (400, format!("method {method} not allowed for {}", target.path));
        return (Some(route), Err(err));
    }
    // ONE snapshot per request: every read below — bounds checks, rank
    // caps, column evaluation, rendering — sees the same model version
    // even if the ingest thread publishes mid-request.
    let snapshot = ctx.handle.load();
    let result = answer(ctx, &snapshot, route, &target, body, start);
    // With ingestion live, stamp the snapshot's epoch into every success
    // body except `/metrics` (which reports it in its ingest section)
    // and `/edges` (whose body already names the epoch it published).
    // With ingestion off nothing is stamped and bodies stay byte-
    // identical to the static-model server.
    let result = match result {
        Ok(body) if ctx.ingest.is_some() && !matches!(route, Route::Metrics | Route::Edges) => {
            Ok(render::with_epoch(body, snapshot.epoch()))
        }
        other => other,
    };
    (Some(route), result)
}

fn answer(
    ctx: &Ctx,
    snapshot: &Arc<Snapshot>,
    route: Route,
    target: &Target,
    body: &str,
    start: Instant,
) -> Result<String, (u16, String)> {
    let model = snapshot.model();
    let parse_usize = |v: &str, key: &str| -> Result<usize, (u16, String)> {
        v.parse().map_err(|_| (400, format!("invalid {key}: {v:?}")))
    };
    let parse_nodes = |target: &Target| -> Result<Vec<usize>, (u16, String)> {
        target
            .require("nodes")?
            .split(',')
            .map(|v| v.parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| (400, "invalid node list".to_string()))
    };
    // The column wait shares the request budget with socket I/O.  In
    // shard mode this hands back the server's partial (lo..hi) column.
    // Evaluation is pinned to *this request's* snapshot, not whatever
    // the handle points at by the time the batch runs.
    let column = |node: usize, rank: Option<usize>| -> Result<Column, (u16, String)> {
        let Engine::Local(batcher) = &ctx.engine else {
            unreachable!("column() is only called on local engines")
        };
        let remaining = ctx.timeout.saturating_sub(start.elapsed());
        batcher.column_rank_at(Arc::clone(snapshot), node, rank, remaining).map_err(|e| match e {
            ColumnError::Timeout => (408, e.to_string()),
            ColumnError::ShuttingDown => (503, e.to_string()),
            ColumnError::Failed(msg) => (400, msg),
        })
    };
    // Pressure-degraded rank.  Public routes opt in with
    // `degraded=allow` (server-chosen rank) and/or `max_rank=T` (client
    // cap); the policy engages only when enabled server-side and the
    // admission queue is at the watermark, and a request that actually
    // degraded says so with a `"served_rank"` field in its body.
    let opt_in: Option<usize> = match (target.get("degraded"), target.get("max_rank")) {
        (None, None) => None,
        (degraded, max_rank) => {
            if let Some(v) = degraded {
                if v != "allow" {
                    return Err((400, format!("invalid degraded: {v:?} (use \"allow\")")));
                }
            }
            Some(match max_rank {
                Some(v) => parse_usize(v, "max_rank")?.max(1),
                None => usize::MAX,
            })
        }
    };
    let degrade: Option<usize> = match (ctx.degrade_rank, opt_in) {
        (Some(policy), Some(cap)) if ctx.gauge.depth() >= ctx.degrade_watermark => {
            let t = policy.max(1).min(cap);
            (t < model.rank()).then_some(t)
        }
        _ => None,
    };
    let mark = |body: String| -> String {
        match degrade {
            Some(t) => {
                let mut body = body;
                body.pop();
                body.push_str(&format!(",\"served_rank\":{t}}}"));
                body
            }
            None => body,
        }
    };
    // Shard routes receive the coordinator's already-made decision as an
    // explicit `rank=t` (normalised: full rank or more means no
    // truncation, so the answer stays cacheable and byte-identical).
    let shard_rank: Option<usize> = match target.get("rank") {
        Some(v) => {
            let t = parse_usize(v, "rank")?.max(1);
            (t < model.rank()).then_some(t)
        }
        None => None,
    };
    if let (Some(t), Engine::Sharded(_)) = (degrade, &ctx.engine) {
        // Local degraded requests are counted by the batcher; the
        // coordinator's own batcher never runs, so count here.
        ctx.metrics.degraded_requests.fetch_add(1, Ordering::Relaxed);
        ctx.metrics.served_rank.observe(t as u64);
    }
    // A shard server owns one row slice; its partial columns cannot
    // answer the public query routes, and a coordinator has no slice of
    // its own to publish.
    let public = matches!(route, Route::Similarity | Route::TopK | Route::Query);
    if public && matches!(ctx.engine, Engine::Local(_)) && ctx.shard_rows.is_some() {
        return Err((400, "this is a shard server; query the coordinator".to_string()));
    }
    let shard_route = matches!(route, Route::ShardRange | Route::ShardColumns | Route::ShardTopK);
    if shard_route && matches!(ctx.engine, Engine::Sharded(_)) {
        return Err((400, "this is a coordinator; shard routes live on shard servers".to_string()));
    }
    // A plain local server doubles as the 1-shard degenerate case: its
    // "slice" is all of 0..n.
    let (lo, hi) = ctx.shard_rows.unwrap_or((0, model.n()));

    match route {
        Route::Health => Ok(render::health(model.n(), model.rank())),
        Route::Edges => {
            let Some(ingestor) = &ctx.ingest else {
                return Err((400, "live ingestion is disabled on this server".to_string()));
            };
            let ops = ingest::parse_ops(body).map_err(|e| (400, e))?;
            if ops.is_empty() {
                return Err((400, "empty edge batch".to_string()));
            }
            let remaining = ctx.timeout.saturating_sub(start.elapsed());
            let out = ingestor.submit(ops, remaining).map_err(|e| {
                if e.contains("timed out") {
                    (408, e)
                } else {
                    (400, e)
                }
            })?;
            Ok(format!(
                "{{\"applied\":{},\"ignored\":{},\"epoch\":{}}}",
                out.applied, out.ignored, out.epoch
            ))
        }
        Route::Metrics => {
            let mut body = ctx.metrics.render_json();
            body.pop();
            body.push_str(&format!(",\"cache_shards\":{}", ctx.cache.render_stats_json()));
            if let Engine::Sharded(coord) = &ctx.engine {
                body.push_str(&format!(",\"coordinator\":{}", coord.metrics.render_json()));
            }
            body.push('}');
            Ok(body)
        }
        Route::Similarity => {
            let a = parse_usize(target.require("a")?, "a")?;
            let b = parse_usize(target.require("b")?, "b")?;
            if let Engine::Sharded(coord) = &ctx.engine {
                let s = coord.similarity_rank(snapshot, a, b, degrade)?;
                return Ok(mark(render::similarity(a, b, s)));
            }
            if a >= model.n() {
                let e = csrplus_core::CoSimRankError::QueryOutOfBounds { node: a, n: model.n() };
                return Err((400, e.to_string()));
            }
            // `[S]_{a,b}` is row `a` of column `b`: the batched/cached
            // column entry is bitwise equal to `model.similarity(a, b)`.
            let col = column(b, degrade)?;
            Ok(mark(render::similarity(a, b, col[a])))
        }
        Route::TopK => {
            let node = parse_usize(target.require("node")?, "node")?;
            let k = match target.get("k") {
                Some(v) => parse_usize(v, "k")?,
                None => 10,
            };
            if let Engine::Sharded(coord) = &ctx.engine {
                let top = coord.top_k_rank(snapshot, node, k, degrade)?;
                return Ok(mark(render::topk(node, &top)));
            }
            let col = column(node, degrade)?;
            Ok(mark(render::topk(node, &render::top_k_from_column(&col, node, k))))
        }
        Route::Query => {
            let nodes = parse_nodes(target)?;
            if let Engine::Sharded(coord) = &ctx.engine {
                let columns = coord.columns_rank(snapshot, &nodes, degrade)?;
                let views: Vec<&[f64]> = columns.iter().map(|c| &c[..]).collect();
                return Ok(mark(render::query(&nodes, &views)));
            }
            let columns: Vec<Column> =
                nodes.iter().map(|&q| column(q, degrade)).collect::<Result<_, _>>()?;
            let views: Vec<&[f64]> = columns.iter().map(|c| &c[..]).collect();
            Ok(mark(render::query(&nodes, &views)))
        }
        Route::ShardRange => Ok(format!("{{\"lo\":{lo},\"hi\":{hi},\"n\":{}}}", model.n())),
        Route::ShardColumns => {
            let nodes = parse_nodes(target)?;
            let columns: Vec<Column> =
                nodes.iter().map(|&q| column(q, shard_rank)).collect::<Result<_, _>>()?;
            // Shard batchers hand back internal-row slices already; a
            // plain server's batcher columns are in original-id space
            // and must be re-gathered into internal order (what the
            // wire protocol speaks) for the 1-shard degenerate case.
            let cols: Vec<String> = columns
                .iter()
                .map(|c| {
                    let hex = if ctx.shard_rows.is_some() {
                        wire::encode_f64s(c)
                    } else {
                        let mut hex = String::with_capacity(c.len() * 16);
                        for row in lo..hi {
                            wire::encode_f64_into(c[model.original_id(row)], &mut hex);
                        }
                        hex
                    };
                    format!("\"{hex}\"")
                })
                .collect();
            let q: Vec<String> = nodes.iter().map(usize::to_string).collect();
            Ok(format!(
                "{{\"lo\":{lo},\"hi\":{hi},\"queries\":[{}],\"cols\":[{}]}}",
                q.join(","),
                cols.join(",")
            ))
        }
        Route::ShardTopK => {
            let node = parse_usize(target.require("node")?, "node")?;
            let k = match target.get("k") {
                Some(v) => parse_usize(v, "k")?,
                None => 10,
            };
            let col = column(node, shard_rank)?;
            // This slice's top-k candidates in original-id space, ranked
            // exactly as `render::top_k_from_column` ranks the full
            // column, so the coordinator's k-way merge reproduces the
            // single-process answer score-bit for score-bit.  As above,
            // a plain server's column is indexed by original id, a shard
            // batcher's by internal row offset.
            let scored = render::top_k_from_scored(
                (lo..hi)
                    .map(|row| {
                        let id = model.original_id(row);
                        let v = if ctx.shard_rows.is_some() { col[row - lo] } else { col[id] };
                        (id, v)
                    })
                    .filter(|&(id, _)| id != node),
                k,
            );
            let results: Vec<String> = scored
                .iter()
                .map(|&(id, s)| format!("\"{id}:{}\"", wire::encode_f64s(&[s])))
                .collect();
            Ok(format!("{{\"node\":{node},\"results\":[{}]}}", results.join(",")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csrplus_core::CsrPlusConfig;
    use csrplus_graph::{generators::figure1_graph, TransitionMatrix};
    use std::io::{Read as _, Write as _};

    fn model() -> CsrPlusModel {
        let t = TransitionMatrix::from_graph(&figure1_graph());
        CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3)).unwrap()
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let code: u16 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (code, body)
    }

    #[test]
    fn default_workers_follow_the_shared_pool_limit() {
        // Satellite contract: no independent `available_parallelism`
        // read — the HTTP pool sizes itself from the same limit the
        // compute kernels share.
        assert_eq!(ServeConfig::default().workers, csrplus_par::threads());
    }

    #[test]
    fn serves_all_routes_and_metrics() {
        let handle = Server::start(model(), 0, ServeConfig::default()).unwrap();
        let addr = handle.addr();

        let (code, body) = get(addr, "/health");
        assert_eq!(code, 200);
        assert!(body.contains("\"nodes\":6"), "{body}");

        let (code, body) = get(addr, "/similarity?a=1&b=3");
        assert_eq!(code, 200);
        assert!(body.starts_with("{\"a\":1,\"b\":3,"), "{body}");

        let (code, body) = get(addr, "/topk?node=1&k=2");
        assert_eq!(code, 200);
        assert_eq!(body.matches("\"score\":").count(), 2, "{body}");

        let (code, body) = get(addr, "/query?nodes=1%2C3");
        assert_eq!(code, 200);
        assert!(body.contains("\"queries\":[1,3]"), "{body}");

        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);
        let (code, body) = get(addr, "/similarity?a=1&a=2&b=3");
        assert_eq!(code, 400);
        assert!(body.contains("duplicate parameter"), "{body}");

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("\"requests_total\":"), "{body}");
        assert!(body.contains("\"cache\":"), "{body}");
        assert!(body.contains("\"batcher\":"), "{body}");

        let metrics = handle.metrics();
        assert_eq!(metrics.requests(Route::Health), 1);
        // The duplicate-parameter request failed before routing, so only
        // the valid similarity request is counted.
        assert_eq!(metrics.requests(Route::Similarity), 1);
        assert!(metrics.total_requests() >= 5);
        assert!(metrics.client_errors.load(Ordering::Relaxed) >= 2, "404 + duplicate param");
        handle.shutdown();
    }

    #[test]
    fn pooled_answers_match_legacy_byte_for_byte() {
        let m = model();
        let expected_sim = crate::legacy::route(&m, "GET /similarity?a=1&b=3 HTTP/1.1").unwrap();
        let expected_query = crate::legacy::route(&m, "GET /query?nodes=1,3 HTTP/1.1").unwrap();
        let handle = Server::start(m, 0, ServeConfig::default()).unwrap();
        let (_, sim) = get(handle.addr(), "/similarity?a=1&b=3");
        let (_, query) = get(handle.addr(), "/query?nodes=1,3");
        assert_eq!(sim, expected_sim);
        assert_eq!(query, expected_query);
        handle.shutdown();
    }

    #[test]
    fn opt_in_parameters_are_inert_when_policies_are_off() {
        // The tentpole's safety contract: with every adaptive policy at
        // its default (off), responses — including ones that *ask* to be
        // degraded — are byte-identical to the legacy server's.
        let m = model();
        let expected_topk = crate::legacy::route(&m, "GET /topk?node=1&k=3 HTTP/1.1").unwrap();
        let expected_query = crate::legacy::route(&m, "GET /query?nodes=1,3 HTTP/1.1").unwrap();
        let handle = Server::start(m, 0, ServeConfig::default()).unwrap();
        let addr = handle.addr();
        let (code, topk) = get(addr, "/topk?node=1&k=3&degraded=allow&max_rank=1");
        assert_eq!(code, 200);
        assert_eq!(topk, expected_topk, "opt-in params must not change a byte");
        let (_, query) = get(addr, "/query?nodes=1%2C3&max_rank=1");
        assert_eq!(query, expected_query);
        let (code, body) = get(addr, "/similarity?a=1&b=3&degraded=deny");
        assert_eq!(code, 400, "only degraded=allow is meaningful: {body}");
        handle.shutdown();
    }

    #[test]
    fn degraded_requests_report_served_rank_and_leave_others_untouched() {
        let m = model();
        let expected_query = crate::legacy::route(&m, "GET /query?nodes=1 HTTP/1.1").unwrap();
        let config =
            ServeConfig { degrade_rank: Some(1), degrade_watermark: 0, ..ServeConfig::default() };
        let handle = Server::start(m, 0, config).unwrap();
        let addr = handle.addr();
        let (code, degraded) = get(addr, "/query?nodes=1&degraded=allow");
        assert_eq!(code, 200);
        assert!(degraded.ends_with(",\"served_rank\":1}"), "{degraded}");
        assert_ne!(degraded.replace(",\"served_rank\":1", ""), expected_query, "scores truncated");
        // Non-opted requests on the same server still get exact answers.
        let (_, plain) = get(addr, "/query?nodes=1");
        assert_eq!(plain, expected_query);
        // max_rank above the policy rank does not un-degrade (min wins);
        // the marker reports the rank actually served.
        let (_, capped) = get(addr, "/topk?node=2&k=2&max_rank=2");
        assert!(capped.ends_with(",\"served_rank\":1}"), "{capped}");
        let (_, metrics_body) = get(addr, "/metrics");
        assert!(metrics_body.contains("\"degraded\":{\"requests\":2,"), "{metrics_body}");
        assert!(metrics_body.contains("\"cache_shards\":[{\"hits\":"), "{metrics_body}");
        handle.shutdown();

        // A policy rank at or above the model's degrades nothing: the
        // opted-in answer is the exact one, unmarked.
        let config =
            ServeConfig { degrade_rank: Some(99), degrade_watermark: 0, ..ServeConfig::default() };
        let handle = Server::start(model(), 0, config).unwrap();
        let (_, body) = get(handle.addr(), "/query?nodes=1&degraded=allow");
        assert_eq!(body, expected_query, "rank ≥ model rank is the full-rank path");
        assert_eq!(handle.metrics().degraded_requests.load(Ordering::Relaxed), 0);
        handle.shutdown();
    }

    #[test]
    fn degraded_answers_are_byte_identical_across_shard_counts() {
        // Rank truncation commutes with sharding: a truncated column is
        // still a concatenation of per-shard truncated slices, so a
        // coordinator forwarding `rank=t` reproduces the single-process
        // degraded bytes exactly.
        let m = model();
        let policy =
            ServeConfig { degrade_rank: Some(2), degrade_watermark: 0, ..ServeConfig::default() };
        let single = Server::start(m.clone(), 0, policy.clone()).unwrap();
        let shards: Vec<ServerHandle> = [(0, 2), (2, 6)]
            .iter()
            .map(|&r| {
                // Shards need no policy of their own: they honour the
                // coordinator's explicit `rank=t`.
                let config = ServeConfig { shard_rows: Some(r), ..ServeConfig::default() };
                Server::start(m.clone(), 0, config).unwrap()
            })
            .collect();
        let config =
            ServeConfig { shards: shards.iter().map(|s| s.addr().to_string()).collect(), ..policy };
        let coordinator = Server::start(m, 0, config).unwrap();
        for path in [
            "/query?nodes=1%2C3&degraded=allow",
            "/topk?node=2&k=3&degraded=allow",
            "/similarity?a=1&b=3&max_rank=2",
            "/query?nodes=0%2C5",
        ] {
            let (code_a, body_a) = get(single.addr(), path);
            let (code_b, body_b) = get(coordinator.addr(), path);
            assert_eq!(code_a, code_b, "{path}");
            assert_eq!(body_a, body_b, "{path}");
            if path.contains("degraded") || path.contains("max_rank") {
                assert!(body_a.contains("\"served_rank\":2"), "{path}: {body_a}");
            }
        }
        coordinator.shutdown();
        single.shutdown();
        for s in shards {
            s.shutdown();
        }
    }

    #[test]
    fn max_requests_counts_only_served_connections() {
        let config = ServeConfig { max_requests: Some(3), ..ServeConfig::default() };
        let handle = Server::start(model(), 0, config);
        let handle = handle.unwrap();
        let addr = handle.addr();
        for _ in 0..3 {
            let (code, _) = get(addr, "/health");
            assert_eq!(code, 200);
        }
        // All three served connections counted; join() returns because
        // the accept loop exited on its own.
        handle.join();
    }

    /// Boots `ranges.len()` shard servers plus a coordinator over them
    /// and a plain single-process server on the same model.
    fn sharded_fixture(
        m: CsrPlusModel,
        ranges: &[(usize, usize)],
    ) -> (Vec<ServerHandle>, ServerHandle, ServerHandle) {
        let shards: Vec<ServerHandle> = ranges
            .iter()
            .map(|&r| {
                let config = ServeConfig { shard_rows: Some(r), ..ServeConfig::default() };
                Server::start(m.clone(), 0, config).unwrap()
            })
            .collect();
        let single = Server::start(m.clone(), 0, ServeConfig::default()).unwrap();
        let config = ServeConfig {
            shards: shards.iter().map(|s| s.addr().to_string()).collect(),
            ..ServeConfig::default()
        };
        let coordinator = Server::start(m, 0, config).unwrap();
        (shards, single, coordinator)
    }

    #[test]
    fn coordinator_answers_byte_identical_to_single_process() {
        let (shards, single, coordinator) = sharded_fixture(model(), &[(0, 2), (2, 5), (5, 6)]);
        for path in [
            "/health",
            "/query?nodes=1%2C3",
            "/query?nodes=0%2C2%2C4%2C5",
            "/similarity?a=1&b=3",
            "/similarity?a=5&b=0",
            "/topk?node=2&k=3",
            "/topk?node=0&k=10",
            "/topk?node=4&k=1",
        ] {
            let (code_a, body_a) = get(single.addr(), path);
            let (code_b, body_b) = get(coordinator.addr(), path);
            assert_eq!(code_a, code_b, "{path}");
            assert_eq!(body_a, body_b, "{path}");
        }
        // Role separation: shards serve /shard/*, the coordinator the
        // public routes, and neither answers the other's.
        let (code, _) = get(shards[0].addr(), "/topk?node=1");
        assert_eq!(code, 400);
        let (code, _) = get(coordinator.addr(), "/shard/range");
        assert_eq!(code, 400);
        let (code, body) = get(shards[1].addr(), "/shard/range");
        assert_eq!(code, 200);
        assert_eq!(body, "{\"lo\":2,\"hi\":5,\"n\":6}");
        let (_, metrics) = get(coordinator.addr(), "/metrics");
        assert!(metrics.contains("\"coordinator\":{\"scatter_requests\":"), "{metrics}");
        assert!(metrics.contains("\"shard_latency_us\":["), "{metrics}");
        coordinator.shutdown();
        single.shutdown();
        for s in shards {
            s.shutdown();
        }
    }

    #[test]
    fn coordinator_unwinds_a_reordered_model_and_degenerates_to_one_shard() {
        use csrplus_graph::partition::Reordering;
        // A reordered model: the gather must scatter shard rows back to
        // original ids.  A *plain* server doubles as the single shard
        // (its /shard/range is 0..n), so 1-shard answers are the very
        // bytes the single-process server produces.
        let m = model().with_permutation(vec![5, 3, 0, 1, 4, 2], Reordering::Rcm).unwrap();
        let single = Server::start(m.clone(), 0, ServeConfig::default()).unwrap();
        let config =
            ServeConfig { shards: vec![single.addr().to_string()], ..ServeConfig::default() };
        let coordinator = Server::start(m.clone(), 0, config).unwrap();
        for path in ["/query?nodes=1%2C3", "/topk?node=2&k=4", "/similarity?a=0&b=5"] {
            let (_, body_a) = get(single.addr(), path);
            let (_, body_b) = get(coordinator.addr(), path);
            assert_eq!(body_a, body_b, "{path}");
        }
        coordinator.shutdown();

        // And across a genuine split of the permuted model.
        let (shards, single2, coordinator) = sharded_fixture(m, &[(0, 3), (3, 6)]);
        for path in ["/query?nodes=0%2C5", "/topk?node=1&k=5", "/similarity?a=2&b=4"] {
            let (_, body_a) = get(single2.addr(), path);
            let (_, body_b) = get(coordinator.addr(), path);
            assert_eq!(body_a, body_b, "{path}");
        }
        coordinator.shutdown();
        single.shutdown();
        single2.shutdown();
        for s in shards {
            s.shutdown();
        }
    }

    #[test]
    fn coordinator_rejects_a_bad_partition() {
        let m = model();
        let shard = Server::start(
            m.clone(),
            0,
            ServeConfig { shard_rows: Some((0, 4)), ..ServeConfig::default() },
        )
        .unwrap();
        // 0..4 alone does not tile 0..6.
        let config =
            ServeConfig { shards: vec![shard.addr().to_string()], ..ServeConfig::default() };
        let err = Server::start(m, 0, config).err().expect("partition hole must be rejected");
        assert!(err.to_string().contains("tile") || err.to_string().contains("stop"), "{err}");
        shard.shutdown();
    }

    fn dynamic() -> DynamicCsrPlus {
        let cfg = csrplus_core::dynamic::DynamicConfig {
            base: CsrPlusConfig::with_rank(6),
            // The ingest thread governs rebuild cadence; don't let the
            // dynamic model auto-refresh underneath it.
            refresh_interval: usize::MAX,
        };
        DynamicCsrPlus::new(&figure1_graph(), cfg).unwrap()
    }

    const POST_WAIT: Duration = Duration::from_secs(30);

    #[test]
    fn live_ingestion_publishes_epochs_and_tags_responses() {
        let handle =
            Server::start_ingesting(dynamic(), 0, ServeConfig::default(), IngestConfig::default())
                .unwrap();
        let addr = handle.addr().to_string();

        // Boot is epoch 0 and every response says so.
        let (code, body) = get(handle.addr(), "/health");
        assert_eq!(code, 200);
        assert!(body.ends_with(",\"epoch\":0}"), "{body}");
        let (_, before) = get(handle.addr(), "/similarity?a=4&b=1");
        assert!(before.ends_with(",\"epoch\":0}"), "{before}");

        // figure1 has no 1→4 edge: inserting it publishes epoch 1.
        let (code, body) =
            wire::post(&addr, "/edges", "{\"op\":\"insert\",\"x\":1,\"y\":4}\n", POST_WAIT)
                .unwrap();
        assert_eq!(code, 200, "{body}");
        assert_eq!(body, "{\"applied\":1,\"ignored\":0,\"epoch\":1}");

        // Queries now answer from the new snapshot — different scores,
        // and the stale epoch-0 cache entry cannot leak in.
        let (_, after) = get(handle.addr(), "/similarity?a=4&b=1");
        assert!(after.ends_with(",\"epoch\":1}"), "{after}");
        assert_ne!(before, after, "the inserted edge must change the answer");

        let (_, metrics) = get(handle.addr(), "/metrics");
        assert!(metrics.contains("\"ingest\":{\"epoch\":1,\"updates_applied\":1,"), "{metrics}");

        // Method discipline: /edges is POST-only, query routes GET-only.
        let (code, _) = get(handle.addr(), "/edges");
        assert_eq!(code, 400);
        let (code, _) = wire::post(&addr, "/health", "", POST_WAIT).unwrap();
        assert_eq!(code, 400);
        // Parse errors name the offending op.
        let (code, body) =
            wire::post(&addr, "/edges", "{\"op\":\"upsert\",\"x\":0,\"y\":1}", POST_WAIT).unwrap();
        assert_eq!(code, 400);
        assert!(body.contains("upsert"), "{body}");
        // Out-of-bounds batches are rejected whole: still epoch 1.
        let (code, _) =
            wire::post(&addr, "/edges", "{\"op\":\"insert\",\"x\":0,\"y\":99}", POST_WAIT).unwrap();
        assert_eq!(code, 400);
        let (_, body) = get(handle.addr(), "/health");
        assert!(body.ends_with(",\"epoch\":1}"), "{body}");
        handle.shutdown();
    }

    #[test]
    fn ingestion_off_servers_reject_edges_and_never_tag_epochs() {
        let handle = Server::start(model(), 0, ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let (code, body) =
            wire::post(&addr, "/edges", "{\"op\":\"insert\",\"x\":1,\"y\":4}", POST_WAIT).unwrap();
        assert_eq!(code, 400);
        assert!(body.contains("disabled"), "{body}");
        // The byte-identity contract: no epoch tag anywhere.
        for path in ["/health", "/similarity?a=1&b=3", "/shard/range"] {
            let (_, body) = get(handle.addr(), path);
            assert!(!body.contains("epoch"), "{path}: {body}");
        }
        handle.shutdown();
    }

    #[test]
    fn timeout_zero_times_out_column_requests() {
        let config = ServeConfig {
            timeout: Duration::from_millis(0),
            linger: Duration::from_secs(1),
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        // With a zero budget the column wait expires immediately: 408.
        let handle = Server::start(model(), 0, config).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write!(stream, "GET /topk?node=1 HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        // Read may fail (the server's write timeout is also 0) — accept
        // either a 408 response or a reset connection.
        let _ = stream.read_to_string(&mut response);
        if !response.is_empty() {
            assert!(response.contains("408"), "{response}");
        }
        handle.shutdown();
    }
}
