//! A shared queue-depth gauge: the one number every adaptive serving
//! policy keys off.
//!
//! The admission queue's depth is the server's best instantaneous load
//! signal — it is exactly the work accepted but not yet started.  The
//! [`crate::pool::WorkerPool`] updates the gauge on every submit and
//! dequeue; readers (the batcher's adaptive linger, the degraded-rank
//! watermark, the `Retry-After` advice on shed) sample it lock-free.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Lock-free queue-depth gauge with a fixed capacity for normalising.
#[derive(Debug)]
pub struct LoadGauge {
    depth: AtomicUsize,
    capacity: usize,
}

impl LoadGauge {
    /// A gauge for a queue admitting up to `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Self {
        LoadGauge { depth: AtomicUsize::new(0), capacity: capacity.max(1) }
    }

    /// Records one job entering the queue.
    pub fn incr(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one job leaving the queue.
    pub fn decr(&self) {
        // Saturating: a racing read between submit and update must never
        // wrap the gauge to usize::MAX.
        let _ = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| Some(d.saturating_sub(1)));
    }

    /// Jobs currently waiting (admitted, not yet picked up).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The queue capacity this gauge normalises against.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queue pressure in `[0, 1]`: depth over capacity, clamped.
    pub fn pressure(&self) -> f64 {
        (self.depth() as f64 / self.capacity as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_depth_and_pressure() {
        let g = LoadGauge::new(4);
        assert_eq!(g.depth(), 0);
        assert_eq!(g.pressure(), 0.0);
        g.incr();
        g.incr();
        assert_eq!(g.depth(), 2);
        assert!((g.pressure() - 0.5).abs() < 1e-12);
        g.decr();
        g.decr();
        g.decr(); // extra decr saturates at zero
        assert_eq!(g.depth(), 0);
        for _ in 0..10 {
            g.incr();
        }
        assert_eq!(g.pressure(), 1.0, "pressure clamps at 1");
    }
}
