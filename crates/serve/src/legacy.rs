//! The original sequential, thread-per-nothing query server, preserved
//! behind `--legacy` and as the baseline for the serving benchmarks.
//!
//! One accept loop, one request at a time — every query pays a full
//! model evaluation.  Compared with [`crate::server`], this is the
//! "no batching, no cache, no concurrency" control.
//!
//! Two deliberate changes from the version this replaced:
//! * failed accepts no longer count toward `max_requests` (the old loop
//!   incremented its counter on the `Err` arm too, so a test server
//!   bombarded with bad connections could exit before serving anything);
//! * query strings are percent-decoded and duplicate parameters are
//!   rejected with `400`, via the shared [`crate::http`] parser.

use crate::http::{self, Target};
use crate::render;
use crate::snapshot::SnapshotHandle;
use csrplus_core::CsrPlusModel;
use std::net::TcpListener;
use std::sync::Arc;

/// Runs the sequential server loop forever (or until `max_requests`
/// connections have been **served** — failed accepts don't count).
pub fn serve(
    model: CsrPlusModel,
    port: u16,
    max_requests: Option<usize>,
) -> Result<(), Box<dyn std::error::Error>> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    // The test harness parses this line to find the ephemeral port.
    println!("listening on http://{addr}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    serve_listener(model, listener, max_requests)
}

/// Like [`serve`], but over a pre-bound listener — lets benchmarks and
/// tests pick an ephemeral port and know its address without parsing the
/// stdout banner.
pub fn serve_listener(
    model: CsrPlusModel,
    listener: TcpListener,
    max_requests: Option<usize>,
) -> Result<(), Box<dyn std::error::Error>> {
    // Even the legacy loop owns its model through the snapshot seam: a
    // per-request `load()` of a handle nobody publishes to is epoch 0
    // forever, so behaviour is byte-identical to the direct-Arc days.
    let handle = SnapshotHandle::new(Arc::new(model));
    let mut served = 0usize;
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                // Blocking handler: each request is microseconds of work.
                if let Err(e) = handle_connection(&handle, stream) {
                    eprintln!("request error: {e}");
                }
                served += 1;
                if let Some(max) = max_requests {
                    if served >= max {
                        break;
                    }
                }
            }
            Err(e) => eprintln!("accept error: {e}"),
        }
    }
    Ok(())
}

fn handle_connection(handle: &SnapshotHandle, stream: std::net::TcpStream) -> std::io::Result<()> {
    let request_line = http::read_request(stream.try_clone()?)?;
    let snapshot = handle.load();
    match route(snapshot.model(), request_line.trim()) {
        Ok(body) => http::write_response(&stream, 200, &body),
        Err((code, msg)) => http::write_error(&stream, code, &msg),
    }
}

/// Routes a request line like `GET /topk?node=1&k=5 HTTP/1.1`.
pub fn route(model: &CsrPlusModel, request_line: &str) -> Result<String, (u16, String)> {
    let target = http::parse_request_line(request_line)?;
    dispatch(model, &target)
}

fn dispatch(model: &CsrPlusModel, target: &Target) -> Result<String, (u16, String)> {
    let parse_usize = |v: &str, key: &str| -> Result<usize, (u16, String)> {
        v.parse().map_err(|_| (400, format!("invalid {key}: {v:?}")))
    };

    match target.path.as_str() {
        "/health" => Ok(render::health(model.n(), model.rank())),
        "/similarity" => {
            let a = parse_usize(target.require("a")?, "a")?;
            let b = parse_usize(target.require("b")?, "b")?;
            let s = model.similarity(a, b).map_err(|e| (400, e.to_string()))?;
            Ok(render::similarity(a, b, s))
        }
        "/topk" => {
            let node = parse_usize(target.require("node")?, "node")?;
            let k = match target.get("k") {
                Some(v) => parse_usize(v, "k")?,
                None => 10,
            };
            let top = model.top_k_pruned(node, k).map_err(|e| (400, e.to_string()))?;
            Ok(render::topk(node, &top))
        }
        "/query" => {
            let nodes: Result<Vec<usize>, _> =
                target.require("nodes")?.split(',').map(|v| v.parse::<usize>()).collect();
            let nodes = nodes.map_err(|_| (400, "invalid node list".to_string()))?;
            let s = model.multi_source(&nodes).map_err(|e| (400, e.to_string()))?;
            let columns: Vec<Vec<f64>> =
                (0..nodes.len()).map(|j| (0..model.n()).map(|i| s.get(i, j)).collect()).collect();
            let views: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
            Ok(render::query(&nodes, &views))
        }
        other => Err((404, format!("no route {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csrplus_core::CsrPlusConfig;
    use csrplus_graph::{generators::figure1_graph, TransitionMatrix};

    fn model() -> CsrPlusModel {
        let t = TransitionMatrix::from_graph(&figure1_graph());
        CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3)).unwrap()
    }

    #[test]
    fn routes_health_and_similarity() {
        let m = model();
        let body = route(&m, "GET /health HTTP/1.1").unwrap();
        assert!(body.contains("\"nodes\":6"));
        assert!(body.contains("\"rank\":3"));
        let body = route(&m, "GET /similarity?a=1&b=3 HTTP/1.1").unwrap();
        assert!(body.contains("\"a\":1"));
        // S[b,d] ≈ 0.485 from the worked example.
        let value: f64 =
            body.split("\"similarity\":").nth(1).unwrap().trim_end_matches('}').parse().unwrap();
        assert!((value - 0.485).abs() < 0.02, "{value}");
    }

    #[test]
    fn routes_topk_and_query() {
        let m = model();
        let body = route(&m, "GET /topk?node=1&k=2 HTTP/1.1").unwrap();
        assert!(body.starts_with("{\"node\":1,\"results\":["));
        assert_eq!(body.matches("\"score\":").count(), 2);
        let body = route(&m, "GET /query?nodes=1,3 HTTP/1.1").unwrap();
        assert!(body.contains("\"queries\":[1,3]"));
        assert_eq!(body.matches('[').count(), 4); // queries + columns + 2 cols
    }

    #[test]
    fn percent_encoded_node_list_is_decoded() {
        let m = model();
        let body = route(&m, "GET /query?nodes=1%2C3 HTTP/1.1").unwrap();
        assert!(body.contains("\"queries\":[1,3]"), "{body}");
    }

    #[test]
    fn error_paths() {
        let m = model();
        assert_eq!(route(&m, "POST /health HTTP/1.1").unwrap_err().0, 400);
        assert_eq!(route(&m, "GET /nope HTTP/1.1").unwrap_err().0, 404);
        assert_eq!(route(&m, "GET /similarity?a=1 HTTP/1.1").unwrap_err().0, 400);
        assert_eq!(route(&m, "GET /similarity?a=1&b=x HTTP/1.1").unwrap_err().0, 400);
        assert_eq!(route(&m, "GET /topk?node=99 HTTP/1.1").unwrap_err().0, 400);
        assert_eq!(route(&m, "GET /query?nodes=1,,3 HTTP/1.1").unwrap_err().0, 400);
        let err = route(&m, "GET /similarity?a=1&a=2&b=3 HTTP/1.1").unwrap_err();
        assert_eq!(err.0, 400);
        assert!(err.1.contains("duplicate parameter"), "{}", err.1);
    }
}
