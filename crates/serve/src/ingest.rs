//! Live edge ingestion: a dedicated update thread owning a
//! [`DynamicCsrPlus`], fed by `POST /edges`, publishing every change as a
//! new epoch through the [`SnapshotHandle`].
//!
//! The split of responsibilities is the whole point:
//!
//! * **Queries never block on updates.**  Readers `load()` an immutable
//!   snapshot and keep it for the whole request; the update thread
//!   mutates its own private model copy and publishes finished versions
//!   with one pointer swap.
//! * **Updates are serialised.**  One thread owns the
//!   [`DynamicCsrPlus`], so rank-one SVD updates, periodic rebuilds and
//!   checkpoint writes need no locking discipline beyond the channel.
//! * **Epochs are the contract.**  Every published model carries a
//!   monotonically increasing epoch; responses echo it, the column cache
//!   keys on it, and checkpoints stamp it into the artifact header so a
//!   restart knows exactly which version it reloaded.
//!
//! The wire format for `POST /edges` is JSON lines, one op per line:
//!
//! ```text
//! {"op":"insert","x":1,"y":4}
//! {"op":"delete","x":0,"y":2}
//! ```

use crate::metrics::Metrics;
use crate::snapshot::SnapshotHandle;
use csrplus_core::dynamic::DynamicCsrPlus;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// One edge edit, as parsed from a `POST /edges` body line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert the directed edge `x → y` (a no-op if it already exists).
    Insert {
        /// Source node.
        x: u32,
        /// Destination node.
        y: u32,
    },
    /// Delete the directed edge `x → y` (a no-op if it is absent).
    Delete {
        /// Source node.
        x: u32,
        /// Destination node.
        y: u32,
    },
}

impl EdgeOp {
    fn endpoints(&self) -> (u32, u32) {
        match *self {
            EdgeOp::Insert { x, y } | EdgeOp::Delete { x, y } => (x, y),
        }
    }
}

/// Parses a `POST /edges` body: JSON lines like
/// `{"op":"insert","x":1,"y":4}`, blank lines ignored.  Errors name the
/// offending line so a client batching thousands of edits can find it.
pub fn parse_ops(body: &str) -> Result<Vec<EdgeOp>, String> {
    let mut ops = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let op = field_str(line, "op")
            .ok_or_else(|| format!("line {lineno}: missing or non-string \"op\""))?;
        let x = field_u32(line, "x")
            .ok_or_else(|| format!("line {lineno}: missing or invalid \"x\""))?;
        let y = field_u32(line, "y")
            .ok_or_else(|| format!("line {lineno}: missing or invalid \"y\""))?;
        ops.push(match op {
            "insert" => EdgeOp::Insert { x, y },
            "delete" => EdgeOp::Delete { x, y },
            other => return Err(format!("line {lineno}: unknown op {other:?}")),
        });
    }
    Ok(ops)
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn field_u32(line: &str, key: &str) -> Option<u32> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Tuning for the update thread.
#[derive(Debug, Clone, Default)]
pub struct IngestConfig {
    /// After this many applied edits, rebuild the model from scratch
    /// (`refresh()`) instead of compounding incremental SVD updates, to
    /// bound numerical drift.  `0` disables explicit rebuilds (the
    /// underlying [`DynamicCsrPlus`] may still auto-refresh on its own
    /// interval).
    pub refresh_budget: usize,
    /// When set, every published epoch is also checkpointed to this path
    /// as a CSRP v2 artifact with the epoch stamped in its header.
    pub checkpoint: Option<PathBuf>,
}

/// What a successfully applied batch reports back to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Applied {
    /// Edits that changed the graph (and were folded into the model).
    pub applied: usize,
    /// No-op edits (inserting an existing edge, deleting a missing one).
    pub ignored: usize,
    /// The epoch now visible to queries.  Unchanged from before the
    /// batch when every edit was a no-op.
    pub epoch: u64,
}

struct Batch {
    ops: Vec<EdgeOp>,
    reply: mpsc::Sender<Result<Applied, String>>,
}

/// Handle to the live update thread.  Dropping it stops the thread after
/// it drains any in-flight batches.
#[derive(Debug)]
pub struct Ingestor {
    tx: Option<mpsc::Sender<Batch>>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Ingestor {
    /// Spawns the update thread.  It takes sole ownership of `dynamic`
    /// (whose current model should already be the snapshot in `handle`)
    /// and publishes every subsequent change through `handle`.
    pub fn start(
        dynamic: DynamicCsrPlus,
        handle: Arc<SnapshotHandle>,
        metrics: Arc<Metrics>,
        config: IngestConfig,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Batch>();
        let thread = thread::Builder::new()
            .name("csrplus-ingest".into())
            .spawn(move || run(dynamic, handle, metrics, config, rx))
            .expect("spawn ingest thread");
        Ingestor { tx: Some(tx), thread: Some(thread) }
    }

    /// Queues a batch of edits and waits up to `timeout` for the update
    /// thread to apply and publish them.  A timeout does not cancel the
    /// batch — it still applies in order; the client just doesn't learn
    /// the resulting epoch.
    pub fn submit(&self, ops: Vec<EdgeOp>, timeout: Duration) -> Result<Applied, String> {
        let tx = self.tx.as_ref().expect("sender lives until drop");
        let (reply, done) = mpsc::channel();
        tx.send(Batch { ops, reply }).map_err(|_| "ingestion thread stopped".to_string())?;
        match done.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err("timed out waiting for the update thread".to_string())
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err("ingestion thread stopped".to_string())
            }
        }
    }
}

impl Drop for Ingestor {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn run(
    mut dynamic: DynamicCsrPlus,
    handle: Arc<SnapshotHandle>,
    metrics: Arc<Metrics>,
    config: IngestConfig,
    rx: mpsc::Receiver<Batch>,
) {
    let mut since_rebuild = 0usize;
    while let Ok(batch) = rx.recv() {
        let outcome =
            apply_batch(&mut dynamic, &handle, &metrics, &config, &mut since_rebuild, &batch.ops);
        // The submitter may have timed out and gone away; that's fine.
        let _ = batch.reply.send(outcome);
    }
}

fn apply_batch(
    dynamic: &mut DynamicCsrPlus,
    handle: &SnapshotHandle,
    metrics: &Metrics,
    config: &IngestConfig,
    since_rebuild: &mut usize,
    ops: &[EdgeOp],
) -> Result<Applied, String> {
    // Validate endpoints up front so a bad batch is rejected whole
    // rather than half-applied.
    let n = dynamic.n() as u32;
    for op in ops {
        let (x, y) = op.endpoints();
        if x >= n || y >= n {
            return Err(format!("edge ({x},{y}) out of bounds for {n} nodes"));
        }
    }
    let mut applied = 0usize;
    let mut ignored = 0usize;
    let mut error = None;
    for op in ops {
        let changed = match *op {
            EdgeOp::Insert { x, y } => dynamic.insert_edge(x, y),
            EdgeOp::Delete { x, y } => dynamic.remove_edge(x, y),
        };
        match changed {
            Ok(true) => applied += 1,
            Ok(false) => ignored += 1,
            Err(e) => {
                // Can't happen after validation, but if it ever does we
                // stop the batch and still publish what already applied.
                error = Some(e.to_string());
                break;
            }
        }
    }
    let mut epoch = handle.epoch();
    if applied > 0 {
        *since_rebuild += applied;
        if config.refresh_budget > 0 && *since_rebuild >= config.refresh_budget {
            dynamic.refresh().map_err(|e| format!("rebuild failed: {e}"))?;
            *since_rebuild = 0;
            metrics.ingest_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        epoch = handle.publish(Arc::new(dynamic.model().clone()));
        metrics.ingest_epoch.store(epoch, Ordering::Relaxed);
        metrics.ingest_epochs_published.fetch_add(1, Ordering::Relaxed);
        metrics.ingest_updates_applied.fetch_add(applied as u64, Ordering::Relaxed);
        if let Some(path) = &config.checkpoint {
            match csrplus_core::persist::save_model_with_epoch(dynamic.model(), path, epoch) {
                Ok(()) => {
                    metrics.ingest_checkpoints.fetch_add(1, Ordering::Relaxed);
                }
                // Checkpointing is best-effort durability; serving the
                // published epoch must not die with a full disk.
                Err(e) => eprintln!("checkpoint failed at epoch {epoch}: {e}"),
            }
        }
    }
    match error {
        Some(e) => Err(e),
        None => Ok(Applied { applied, ignored, epoch }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csrplus_core::dynamic::DynamicConfig;
    use csrplus_core::CsrPlusConfig;
    use csrplus_graph::generators::figure1_graph;

    fn dynamic() -> DynamicCsrPlus {
        let cfg = DynamicConfig {
            base: CsrPlusConfig::with_rank(6),
            // Effectively "never auto-refresh" so the ingest-level budget
            // is what the tests observe.
            refresh_interval: usize::MAX,
        };
        DynamicCsrPlus::new(&figure1_graph(), cfg).unwrap()
    }

    fn boot() -> (DynamicCsrPlus, Arc<SnapshotHandle>, Arc<Metrics>) {
        let d = dynamic();
        let handle = Arc::new(SnapshotHandle::new(Arc::new(d.model().clone())));
        (d, handle, Arc::new(Metrics::new()))
    }

    const WAIT: Duration = Duration::from_secs(30);

    #[test]
    fn parses_json_lines() {
        let ops = parse_ops(
            "{\"op\":\"insert\",\"x\":1,\"y\":4}\n\n{\"op\":\"delete\",\"x\":0,\"y\":2}\n",
        )
        .unwrap();
        assert_eq!(ops, vec![EdgeOp::Insert { x: 1, y: 4 }, EdgeOp::Delete { x: 0, y: 2 }]);
        // Whitespace after colons is tolerated.
        let ops = parse_ops("{\"op\": \"insert\", \"x\": 3, \"y\": 5}").unwrap();
        assert_eq!(ops, vec![EdgeOp::Insert { x: 3, y: 5 }]);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err =
            parse_ops("{\"op\":\"insert\",\"x\":1,\"y\":4}\n{\"op\":\"upsert\",\"x\":1,\"y\":4}")
                .unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("upsert"), "{err}");
        assert!(parse_ops("{\"op\":\"insert\",\"x\":1}").unwrap_err().contains("\"y\""));
        assert!(parse_ops("{\"op\":\"insert\",\"x\":-1,\"y\":2}").unwrap_err().contains("\"x\""));
        assert!(parse_ops("not json").unwrap_err().contains("\"op\""));
    }

    #[test]
    fn applied_batches_publish_new_epochs() {
        let (d, handle, metrics) = boot();
        let ingestor =
            Ingestor::start(d, Arc::clone(&handle), Arc::clone(&metrics), IngestConfig::default());

        // figure1 has no 1→4 edge: this applies and bumps the epoch.
        let out = ingestor.submit(vec![EdgeOp::Insert { x: 1, y: 4 }], WAIT).unwrap();
        assert_eq!((out.applied, out.ignored, out.epoch), (1, 0, 1));
        assert_eq!(handle.epoch(), 1);

        // Re-inserting is a pure no-op: no new epoch is published.
        let out = ingestor.submit(vec![EdgeOp::Insert { x: 1, y: 4 }], WAIT).unwrap();
        assert_eq!((out.applied, out.ignored, out.epoch), (0, 1, 1));
        assert_eq!(handle.epoch(), 1);

        // Deleting it applies again.
        let out = ingestor.submit(vec![EdgeOp::Delete { x: 1, y: 4 }], WAIT).unwrap();
        assert_eq!((out.applied, out.ignored, out.epoch), (1, 0, 2));
        assert_eq!(metrics.ingest_epoch.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.ingest_updates_applied.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.ingest_epochs_published.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn out_of_bounds_batches_are_rejected_whole() {
        let (d, handle, metrics) = boot();
        let ingestor = Ingestor::start(d, Arc::clone(&handle), metrics, IngestConfig::default());
        let err = ingestor
            .submit(vec![EdgeOp::Insert { x: 1, y: 4 }, EdgeOp::Insert { x: 1, y: 99 }], WAIT)
            .unwrap_err();
        assert!(err.contains("out of bounds"), "{err}");
        // Nothing applied: the valid first op must not have leaked in.
        assert_eq!(handle.epoch(), 0);
    }

    #[test]
    fn refresh_budget_triggers_rebuilds() {
        let (d, handle, metrics) = boot();
        let config = IngestConfig { refresh_budget: 2, checkpoint: None };
        let ingestor = Ingestor::start(d, Arc::clone(&handle), Arc::clone(&metrics), config);
        ingestor.submit(vec![EdgeOp::Insert { x: 1, y: 4 }], WAIT).unwrap();
        assert_eq!(metrics.ingest_rebuilds.load(Ordering::Relaxed), 0);
        ingestor.submit(vec![EdgeOp::Insert { x: 2, y: 5 }], WAIT).unwrap();
        assert_eq!(metrics.ingest_rebuilds.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn checkpoints_stamp_the_published_epoch() {
        let dir = std::env::temp_dir().join("csrplus_ingest_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.csrp");
        let (d, handle, metrics) = boot();
        let config = IngestConfig { refresh_budget: 0, checkpoint: Some(path.clone()) };
        let ingestor = Ingestor::start(d, Arc::clone(&handle), Arc::clone(&metrics), config);
        let out = ingestor.submit(vec![EdgeOp::Insert { x: 1, y: 4 }], WAIT).unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(csrplus_core::persist::saved_epoch(&path).unwrap(), 1);
        assert_eq!(metrics.ingest_checkpoints.load(Ordering::Relaxed), 1);
        // The checkpoint is a loadable model with the inserted edge's
        // effect baked in.
        let loaded = csrplus_core::persist::load_model(&path).unwrap();
        assert_eq!(loaded.n(), 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn published_models_answer_with_the_new_edge() {
        let (d, handle, _m) = boot();
        let before = handle.load();
        let s_before = before.model().similarity(4, 1).unwrap();
        let metrics = Arc::new(Metrics::new());
        let ingestor = Ingestor::start(d, Arc::clone(&handle), metrics, IngestConfig::default());
        ingestor.submit(vec![EdgeOp::Insert { x: 1, y: 4 }], WAIT).unwrap();
        let after = handle.load();
        let s_after = after.model().similarity(4, 1).unwrap();
        // The old snapshot is untouched; the new one reflects the edit.
        assert_eq!(before.model().similarity(4, 1).unwrap(), s_before);
        assert_ne!(s_before, s_after);
        drop(ingestor);
    }
}
