//! The scatter-gather coordinator: fans one query out over shard
//! servers that each own a contiguous internal-row slice of the model,
//! and merges the partial answers back into exactly what a
//! single-process server would have said.
//!
//! Three gather strategies, one per route:
//!
//! * `/query` (and cold `/similarity`) **scatters** to every shard and
//!   reassembles full columns, scattering each shard's internal-row
//!   slice back to original node ids through the model permutation;
//! * `/topk` walks shards in **descending split-bound order** and merges
//!   per-shard top-k heaps, *skipping* (never contacting) any shard
//!   whose Cauchy–Schwarz bound proves it cannot displace the current
//!   k-th best — on clustered reorderings most shards are never asked;
//! * `/similarity` with a cached column reads the row directly; a cold
//!   hit fetches only the one shard that owns row `a`.
//!
//! Every shard request is budgeted (`shard_timeout`) and **hedged**: if
//! a shard has not answered within the hedge delay a second identical
//! request is launched and the first response wins, so one straggler
//! process does not set the tail latency of the whole gather.
//!
//! Because shard slices concatenate **bitwise** into the single-process
//! evaluation (each column entry is an independent dot product) and
//! scores cross the wire as exact bit patterns, a coordinator over any
//! shard count — including the 1-shard degenerate case — produces
//! byte-identical response bodies.

use crate::cache::{Column, ColumnCache};
use crate::metrics::Histogram;
use crate::render;
use crate::snapshot::{Snapshot, SnapshotHandle};
use crate::wire;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// One shard as the coordinator sees it: an address plus the internal
/// row range it announced at discovery.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// `host:port` of the shard server.
    pub addr: String,
    /// First internal row the shard owns.
    pub lo: usize,
    /// One past the last internal row the shard owns.
    pub hi: usize,
}

/// Per-shard upper-bound ingredients, precomputed once at boot from the
/// model's split tables: for every internal row `x` in the shard,
/// `score(x, q) = c·Z[x]·U[q] ≤ c·(z0[x]·u0[q] + ‖z[x,1..]‖·‖u[q,1..]‖)`,
/// so `c·(max(u0·z0_max, u0·z0_min) + urest·zrest_max)` bounds every
/// score the shard could contribute.
#[derive(Debug, Clone, Copy)]
struct ShardBound {
    z0_min: f64,
    z0_max: f64,
    zrest_max: f64,
}

/// Counters and histograms specific to the scatter-gather layer,
/// rendered as the `"coordinator"` section of `GET /metrics`.
#[derive(Debug)]
pub struct GatherMetrics {
    /// Gathers executed (one per query that reached the shard layer).
    pub scatter_requests: AtomicU64,
    /// Shards proven irrelevant by the split bound and never contacted.
    pub scatter_skipped_shards: AtomicU64,
    /// Hedge requests launched against straggling shards.
    pub scatter_hedges: AtomicU64,
    /// Shards actually contacted per gather.
    pub scatter_fanout: Histogram,
    /// Time merging partial answers (µs), excluding shard round-trips.
    pub gather_merge_us: Histogram,
    /// Per-shard round-trip latency (µs), indexed like the shard list —
    /// the tail of these is what hedging exists to cut.
    pub shard_latency_us: Vec<Histogram>,
}

impl GatherMetrics {
    fn new(shards: usize) -> Self {
        GatherMetrics {
            scatter_requests: AtomicU64::new(0),
            scatter_skipped_shards: AtomicU64::new(0),
            scatter_hedges: AtomicU64::new(0),
            scatter_fanout: Histogram::new(),
            gather_merge_us: Histogram::new(),
            shard_latency_us: (0..shards).map(|_| Histogram::new()).collect(),
        }
    }

    /// The `"coordinator"` JSON object.
    pub fn render_json(&self) -> String {
        let shards: Vec<String> =
            self.shard_latency_us.iter().map(Histogram::render_json).collect();
        format!(
            concat!(
                "{{\"scatter_requests\":{},\"skipped_shards\":{},\"hedges\":{},",
                "\"fanout\":{},\"merge_us\":{},\"shard_latency_us\":[{}]}}"
            ),
            self.scatter_requests.load(Ordering::Relaxed),
            self.scatter_skipped_shards.load(Ordering::Relaxed),
            self.scatter_hedges.load(Ordering::Relaxed),
            self.scatter_fanout.render_json(),
            self.gather_merge_us.render_json(),
            shards.join(","),
        )
    }
}

/// The coordinator engine: shard directory, bound table, column cache,
/// and gather metrics.
///
/// The coordinator is snapshot-scoped like the local engine: every
/// gather method takes the request's [`Snapshot`] and answers entirely
/// against it.  The per-shard bound table is derived from a snapshot's
/// split tables and memoised by epoch, so the epoch-0 steady state costs
/// one boot-time derivation exactly as before.
pub struct Coordinator {
    handle: Arc<SnapshotHandle>,
    shards: Vec<ShardSpec>,
    bounds: Mutex<EpochBounds>,
    cache: Arc<ColumnCache>,
    timeout: Duration,
    hedge: Duration,
    /// Scatter-gather metrics (also rendered under `/metrics`).
    pub metrics: GatherMetrics,
}

/// The bound table plus the epoch whose split tables produced it.
struct EpochBounds {
    epoch: u64,
    bounds: Vec<ShardBound>,
}

/// How long boot-time shard discovery keeps retrying before giving up.
const DISCOVERY_BUDGET: Duration = Duration::from_secs(10);
const DISCOVERY_BACKOFF: Duration = Duration::from_millis(50);

impl Coordinator {
    /// Discovers every shard's row range (retrying while they boot),
    /// validates that together they tile `0..n` exactly and that every
    /// shard reports the same model epoch (shards without an epoch field
    /// are epoch 0), and precomputes the per-shard bound table.
    pub fn connect(
        handle: Arc<SnapshotHandle>,
        shard_addrs: &[String],
        timeout: Duration,
        hedge: Duration,
        cache: Arc<ColumnCache>,
    ) -> Result<Coordinator, String> {
        if shard_addrs.is_empty() {
            return Err("coordinator needs at least one shard address".to_string());
        }
        let boot = handle.load();
        let n = boot.model().n();
        let mut shards = Vec::with_capacity(shard_addrs.len());
        let mut epochs: Vec<(String, u64)> = Vec::with_capacity(shard_addrs.len());
        for addr in shard_addrs {
            let deadline = Instant::now() + DISCOVERY_BUDGET;
            let body = loop {
                match wire::get(addr, "/shard/range", timeout) {
                    Ok((200, body)) => break body,
                    Ok((code, body)) => {
                        return Err(format!("shard {addr} rejected discovery: {code} {body}"))
                    }
                    Err(e) if Instant::now() < deadline => {
                        let _ = e; // still booting; retry
                        std::thread::sleep(DISCOVERY_BACKOFF);
                    }
                    Err(e) => return Err(format!("shard {addr} unreachable: {e}")),
                }
            };
            let lo = wire::json_usize(&body, "lo")?;
            let hi = wire::json_usize(&body, "hi")?;
            let shard_n = wire::json_usize(&body, "n")?;
            if shard_n != n {
                return Err(format!(
                    "shard {addr} serves a model with n = {shard_n}, coordinator has n = {n}"
                ));
            }
            // Static shards predate epochs and omit the field: epoch 0.
            let epoch = wire::json_usize(&body, "epoch").map(|e| e as u64).unwrap_or(0);
            epochs.push((addr.clone(), epoch));
            shards.push(ShardSpec { addr: addr.clone(), lo, hi });
        }
        // A gather that mixes model versions would merge slices of two
        // different similarity matrices; refuse to boot over it.
        if let Some(((a0, e0), (a1, e1))) = epochs.split_first().and_then(|(first, rest)| {
            rest.iter().find(|(_, e)| e != &first.1).map(|bad| (first.clone(), bad.clone()))
        }) {
            return Err(format!(
                "shard epochs disagree: {a0} is at epoch {e0}, {a1} at epoch {e1}"
            ));
        }
        shards.sort_by_key(|s| s.lo);
        let mut next = 0;
        for s in &shards {
            if s.lo != next || s.hi < s.lo {
                return Err(format!(
                    "shard ranges do not tile 0..{n}: {} covers {}..{} but {next} is next",
                    s.addr, s.lo, s.hi
                ));
            }
            next = s.hi;
        }
        if next != n {
            return Err(format!("shard ranges stop at {next}, model has {n} rows"));
        }

        let bounds =
            Mutex::new(EpochBounds { epoch: boot.epoch(), bounds: derive_bounds(&boot, &shards) });
        let metrics = GatherMetrics::new(shards.len());
        Ok(Coordinator { handle, shards, bounds, cache, timeout, hedge, metrics })
    }

    /// The shard directory (sorted by row range).
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Number of nodes in the current snapshot's model.
    pub fn n(&self) -> usize {
        self.handle.load().model().n()
    }

    /// The bound table for `snapshot`, memoised by epoch: recomputed
    /// only when a request arrives under a newer published model.
    fn bounds_for(&self, snapshot: &Snapshot) -> Vec<ShardBound> {
        let mut cached = self.bounds.lock().expect("bounds lock");
        if cached.epoch != snapshot.epoch() {
            cached.epoch = snapshot.epoch();
            cached.bounds = derive_bounds(snapshot, &self.shards);
        }
        cached.bounds.clone()
    }

    /// One hedged, budgeted GET against shard `si`.  A second identical
    /// request launches if the first has not answered within the hedge
    /// delay; whichever response lands first wins.
    fn fetch(&self, si: usize, path: &str) -> Result<String, (u16, String)> {
        let start = Instant::now();
        let (tx, rx) = mpsc::channel::<Result<(u16, String), String>>();
        let launch = |tx: mpsc::Sender<Result<(u16, String), String>>| {
            let addr = self.shards[si].addr.clone();
            let path = path.to_string();
            let timeout = self.timeout;
            std::thread::spawn(move || {
                let _ = tx.send(wire::get(&addr, &path, timeout));
            });
        };
        launch(tx.clone());
        let hedge = if self.hedge.is_zero() { self.timeout } else { self.hedge.min(self.timeout) };
        let mut result = rx.recv_timeout(hedge);
        if matches!(result, Err(mpsc::RecvTimeoutError::Timeout)) {
            // Straggler: race a second attempt, first answer wins.
            self.metrics.scatter_hedges.fetch_add(1, Ordering::Relaxed);
            launch(tx.clone());
            let remaining = self.timeout.saturating_sub(start.elapsed());
            result = rx.recv_timeout(remaining);
        }
        drop(tx);
        self.metrics.shard_latency_us[si].observe_duration(start.elapsed());
        let addr = &self.shards[si].addr;
        match result {
            Ok(Ok((200, body))) => Ok(body),
            Ok(Ok((code, body))) => Err((code, format!("shard {addr}: {body}"))),
            Ok(Err(e)) => Err((502, format!("shard {addr}: {e}"))),
            Err(_) => Err((504, format!("shard {addr} timed out"))),
        }
    }

    /// Full similarity columns for `nodes`, in original-id space:
    /// cache hits are returned as-is, misses are gathered from every
    /// shard in one scatter and reassembled.
    pub fn columns(
        &self,
        snapshot: &Snapshot,
        nodes: &[usize],
    ) -> Result<Vec<Column>, (u16, String)> {
        self.columns_rank(snapshot, nodes, None)
    }

    /// [`Coordinator::columns`] with an optional rank truncation.
    /// `Some(t)` forwards `rank=t` to every shard and bypasses the
    /// column cache in both directions — truncated columns are never
    /// cached and never served from cache.
    pub fn columns_rank(
        &self,
        snapshot: &Snapshot,
        nodes: &[usize],
        rank: Option<usize>,
    ) -> Result<Vec<Column>, (u16, String)> {
        let model = snapshot.model();
        let n = model.n();
        for &q in nodes {
            if q >= n {
                let e = csrplus_core::CoSimRankError::QueryOutOfBounds { node: q, n };
                return Err((400, e.to_string()));
            }
        }
        let mut out: Vec<Option<Column>> = match rank {
            None => nodes.iter().map(|&q| self.cache.get(q, snapshot.epoch())).collect(),
            Some(_) => vec![None; nodes.len()],
        };
        let mut missing: Vec<usize> = Vec::new();
        for (&q, slot) in nodes.iter().zip(&out) {
            if slot.is_none() && !missing.contains(&q) {
                missing.push(q);
            }
        }
        if !missing.is_empty() {
            self.metrics.scatter_requests.fetch_add(1, Ordering::Relaxed);
            self.metrics.scatter_fanout.observe(self.shards.len() as u64);
            let list = missing.iter().map(usize::to_string).collect::<Vec<_>>().join("%2C");
            let path = format!("/shard/columns?nodes={list}{}", rank_suffix(rank));
            let partials = self.scatter_all(&path)?;
            let merge_start = Instant::now();
            let mut full: Vec<Vec<f64>> = missing.iter().map(|_| vec![0.0; n]).collect();
            for (shard, body) in self.shards.iter().zip(&partials) {
                let cols = wire::json_string_array(body, "cols").map_err(|e| (502, e))?;
                if cols.len() != missing.len() {
                    return Err((
                        502,
                        format!(
                            "shard {} answered {} columns, wanted {}",
                            shard.addr,
                            cols.len(),
                            missing.len()
                        ),
                    ));
                }
                for (dst, hex) in full.iter_mut().zip(&cols) {
                    let part = wire::decode_f64s(hex).map_err(|e| (502, e))?;
                    if part.len() != shard.hi - shard.lo {
                        return Err((502, format!("shard {} column length mismatch", shard.addr)));
                    }
                    // Internal row → original node id: the gather is
                    // where the reordering permutation unwinds.
                    for (row, v) in (shard.lo..shard.hi).zip(part) {
                        dst[model.original_id(row)] = v;
                    }
                }
            }
            for (q, col) in missing.iter().zip(full) {
                let col: Column = Column::from(col.into_boxed_slice());
                if rank.is_none() {
                    self.cache.insert(*q, snapshot.epoch(), Arc::clone(&col));
                }
                for (slot, &want) in out.iter_mut().zip(nodes) {
                    if want == *q && slot.is_none() {
                        *slot = Some(Arc::clone(&col));
                    }
                }
            }
            self.metrics.gather_merge_us.observe_duration(merge_start.elapsed());
        }
        Ok(out.into_iter().map(|c| c.expect("every node resolved")).collect())
    }

    /// Fans `path` out to every shard concurrently (each hedged
    /// independently) and returns the bodies in shard order.
    fn scatter_all(&self, path: &str) -> Result<Vec<String>, (u16, String)> {
        let mut results: Vec<Result<String, (u16, String)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|si| scope.spawn(move || self.fetch(si, path)))
                .collect();
            results =
                handles.into_iter().map(|h| h.join().expect("shard fetch panicked")).collect();
        });
        results.into_iter().collect()
    }

    /// `[S]_{a,b}` — from a cached column when possible, otherwise from
    /// the single shard owning internal row `a` (no full gather).
    pub fn similarity(
        &self,
        snapshot: &Snapshot,
        a: usize,
        b: usize,
    ) -> Result<f64, (u16, String)> {
        self.similarity_rank(snapshot, a, b, None)
    }

    /// [`Coordinator::similarity`] with an optional rank truncation
    /// (`Some(t)` bypasses the cache and forwards `rank=t`).
    pub fn similarity_rank(
        &self,
        snapshot: &Snapshot,
        a: usize,
        b: usize,
        rank: Option<usize>,
    ) -> Result<f64, (u16, String)> {
        let model = snapshot.model();
        let n = model.n();
        for node in [a, b] {
            if node >= n {
                let e = csrplus_core::CoSimRankError::QueryOutOfBounds { node, n };
                return Err((400, e.to_string()));
            }
        }
        if rank.is_none() {
            if let Some(col) = self.cache.get(b, snapshot.epoch()) {
                return Ok(col[a]);
            }
        }
        let row = model.internal_row(a);
        let si = self
            .shards
            .iter()
            .position(|s| s.lo <= row && row < s.hi)
            .expect("shard ranges tile 0..n");
        self.metrics.scatter_requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.scatter_fanout.observe(1);
        let body = self.fetch(si, &format!("/shard/columns?nodes={b}{}", rank_suffix(rank)))?;
        let cols = wire::json_string_array(&body, "cols").map_err(|e| (502, e))?;
        let hex = cols.first().ok_or((502, "shard answered no columns".to_string()))?;
        let part = wire::decode_f64s(hex).map_err(|e| (502, e))?;
        part.get(row - self.shards[si].lo)
            .copied()
            .ok_or((502, "shard column too short".to_string()))
    }

    /// Global top-`k` for `q`: shards are visited in descending bound
    /// order and merged; once `k` results are held, any shard whose
    /// bound is strictly below the k-th best score is skipped without a
    /// request (bound < kth ⟹ every score it holds < kth, so not even
    /// the id tie-break can displace the current set).
    pub fn top_k(
        &self,
        snapshot: &Snapshot,
        q: usize,
        k: usize,
    ) -> Result<Vec<(usize, f64)>, (u16, String)> {
        self.top_k_rank(snapshot, q, k, None)
    }

    /// [`Coordinator::top_k`] with an optional rank truncation.
    /// `Some(t)` bypasses the cache, forwards `rank=t` to every shard
    /// contacted, and disables bound-based shard skipping — the split
    /// bounds summarise full-rank scores, so under truncation they are
    /// used only to order shard visits, never to prove one irrelevant.
    pub fn top_k_rank(
        &self,
        snapshot: &Snapshot,
        q: usize,
        k: usize,
        rank: Option<usize>,
    ) -> Result<Vec<(usize, f64)>, (u16, String)> {
        let model = snapshot.model();
        let n = model.n();
        if q >= n {
            let e = csrplus_core::CoSimRankError::QueryOutOfBounds { node: q, n };
            return Err((400, e.to_string()));
        }
        if rank.is_none() {
            if let Some(col) = self.cache.get(q, snapshot.epoch()) {
                return Ok(render::top_k_from_column(&col, q, k));
            }
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        self.metrics.scatter_requests.fetch_add(1, Ordering::Relaxed);
        let c = model.config().damping;
        let uq = model.u().row_ref(model.internal_row(q));
        let (u0, urest) = (uq.first(), uq.tail_norm2());
        let bounds = self.bounds_for(snapshot);
        let mut order: Vec<(f64, usize)> = bounds
            .iter()
            .enumerate()
            .map(|(si, b)| {
                let z0_term = (u0 * b.z0_max).max(u0 * b.z0_min);
                let bound = c * (z0_term + urest * b.zrest_max);
                // Mathematically `bound ≥` every shard score, but both
                // sides are computed in floats — pad by a few ulps so
                // rounding can never skip a shard holding a boundary
                // score (skips trade work, never correctness).
                (bound + bound.abs() * 1e-12, si)
            })
            .collect();
        order.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut best: Vec<(usize, f64)> = Vec::new();
        let mut kth = f64::NEG_INFINITY;
        let mut contacted = 0u64;
        for (idx, &(bound, si)) in order.iter().enumerate() {
            if rank.is_none() && best.len() == k && bound < kth {
                let skipped = (order.len() - idx) as u64;
                self.metrics.scatter_skipped_shards.fetch_add(skipped, Ordering::Relaxed);
                break;
            }
            contacted += 1;
            let body =
                self.fetch(si, &format!("/shard/topk?node={q}&k={k}{}", rank_suffix(rank)))?;
            let merge_start = Instant::now();
            for pair in wire::json_string_array(&body, "results").map_err(|e| (502, e))? {
                let (id, hex) =
                    pair.split_once(':').ok_or((502, format!("bad top-k pair {pair:?}")))?;
                let id: usize = id.parse().map_err(|_| (502, format!("bad node id {id:?}")))?;
                let score = wire::decode_f64(hex).map_err(|e| (502, e))?;
                best.push((id, score));
            }
            best.sort_by(|a, b| {
                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
            });
            best.truncate(k);
            kth = if best.len() == k { best[k - 1].1 } else { f64::NEG_INFINITY };
            self.metrics.gather_merge_us.observe_duration(merge_start.elapsed());
        }
        self.metrics.scatter_fanout.observe(contacted);
        Ok(best)
    }
}

/// The `&rank=t` query suffix a truncated gather forwards to shards.
fn rank_suffix(rank: Option<usize>) -> String {
    rank.map(|t| format!("&rank={t}")).unwrap_or_default()
}

/// Builds the per-shard split-bound table from a snapshot's derived
/// tables (see [`ShardBound`]).
fn derive_bounds(snapshot: &Snapshot, shards: &[ShardSpec]) -> Vec<ShardBound> {
    let (_, z_split) = snapshot.model().derived_tables();
    shards
        .iter()
        .map(|s| {
            let mut b =
                ShardBound { z0_min: f64::INFINITY, z0_max: f64::NEG_INFINITY, zrest_max: 0.0 };
            for &(z0, zrest) in &z_split[s.lo..s.hi] {
                b.z0_min = b.z0_min.min(z0);
                b.z0_max = b.z0_max.max(z0);
                b.zrest_max = b.zrest_max.max(zrest);
            }
            b
        })
        .collect()
}
