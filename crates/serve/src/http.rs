//! Minimal std-only HTTP/1.1 plumbing shared by the pooled and legacy
//! servers: request-line reading, query-string parsing with
//! percent-decoding and duplicate-parameter rejection, and response
//! writing.

use std::io::{BufRead, BufReader, Read, Write};

/// A parsed `GET` request target: path plus decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// The path component (before `?`).
    pub path: String,
    /// Decoded `key=value` pairs, in order of appearance.
    pub params: Vec<(String, String)>,
}

impl Target {
    /// The value of parameter `key`, or a `400` error if absent.
    pub fn require(&self, key: &str) -> Result<&str, (u16, String)> {
        self.get(key).ok_or_else(|| (400, format!("missing parameter {key:?}")))
    }

    /// The value of parameter `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parses a request line like `GET /topk?node=1&k=5 HTTP/1.1` into a
/// [`Target`], enforcing `GET`, decoding `%XX` escapes (and `+` as
/// space), and rejecting duplicate parameters with a clear message.
pub fn parse_request_line(request_line: &str) -> Result<Target, (u16, String)> {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return Err((400, format!("unsupported method {method:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = parse_query(query)?;
    Ok(Target { path: path.to_string(), params })
}

/// Parses and percent-decodes a query string.  Pairs without `=` are
/// ignored (matching the original server); duplicate keys are a `400`
/// (silently taking the first is how inconsistent clients hide bugs).
pub fn parse_query(query: &str) -> Result<Vec<(String, String)>, (u16, String)> {
    let mut params: Vec<(String, String)> = Vec::new();
    for pair in query.split('&') {
        let Some((k, v)) = pair.split_once('=') else { continue };
        let k = percent_decode(k).map_err(|e| (400, format!("bad parameter name: {e}")))?;
        let v = percent_decode(v).map_err(|e| (400, format!("bad value for {k:?}: {e}")))?;
        if params.iter().any(|(seen, _)| *seen == k) {
            return Err((400, format!("duplicate parameter {k:?}")));
        }
        params.push((k, v));
    }
    Ok(params)
}

/// Decodes `%XX` escapes and `+`-as-space.  Errors on truncated or
/// non-hex escapes and on non-UTF-8 decoded bytes.
pub fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex =
                    bytes.get(i + 1..i + 3).ok_or_else(|| format!("truncated escape in {s:?}"))?;
                let hi = hex_value(hex[0]).ok_or_else(|| format!("invalid escape in {s:?}"))?;
                let lo = hex_value(hex[1]).ok_or_else(|| format!("invalid escape in {s:?}"))?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("escape decodes to invalid UTF-8 in {s:?}"))
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Reads the request line and drains the headers (GET only, no bodies).
pub fn read_request<R: Read>(stream: R) -> std::io::Result<String> {
    Ok(read_request_with_body(stream)?.line)
}

/// A raw request as read off the wire: the request line plus the body
/// (empty unless the client sent `Content-Length`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRequest {
    /// The request line, e.g. `POST /edges HTTP/1.1\r\n`.
    pub line: String,
    /// The request body (bounded by [`MAX_BODY_BYTES`]).
    pub body: String,
}

/// Bodies past this size are refused at the read layer (ingestion
/// batches are expected to be a few thousand small JSON lines, not
/// bulk uploads).
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Reads the request line, the headers (capturing `Content-Length`) and
/// the body.  GET requests without a body return an empty body — this
/// is a strict superset of [`read_request`].
pub fn read_request_with_body<R: Read>(stream: R) -> std::io::Result<RawRequest> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut content_length = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("request body of {content_length} bytes exceeds {MAX_BODY_BYTES}"),
        ));
    }
    let mut body_bytes = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body_bytes)?;
    }
    let body = String::from_utf8(body_bytes).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "request body is not UTF-8")
    })?;
    Ok(RawRequest { line: request_line, body })
}

/// Parses a request line like [`parse_request_line`] but accepts the
/// listed methods, returning `(method, target)`.  The pooled server
/// uses this to admit `POST /edges`; the legacy server and all public
/// query routes stay strictly `GET`.
pub fn parse_request_line_methods(
    request_line: &str,
    methods: &[&str],
) -> Result<(String, Target), (u16, String)> {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if !methods.contains(&method) {
        return Err((400, format!("unsupported method {method:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = parse_query(query)?;
    Ok((method.to_string(), Target { path: path.to_string(), params }))
}

/// The standard reason phrase for the status codes this crate emits.
pub fn reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` HTTP/1.1 response.
pub fn write_response<W: Write>(mut stream: W, code: u16, body: &str) -> std::io::Result<()> {
    // Prebuilt + one write_all: `write!` would issue a syscall per
    // format fragment, scattering one response across many segments.
    let response = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(code),
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Writes the JSON error body for a `(code, message)` routing error.
pub fn write_error<W: Write>(stream: W, code: u16, msg: &str) -> std::io::Result<()> {
    let body = format!("{{\"error\":{}}}", json_string(msg));
    write_response(stream, code, &body)
}

/// [`write_error`] with a `Retry-After: <seconds>` header — the shed
/// path's backpressure advice to well-behaved clients.
pub fn write_error_retry_after<W: Write>(
    mut stream: W,
    code: u16,
    msg: &str,
    retry_after_s: u64,
) -> std::io::Result<()> {
    let body = format!("{{\"error\":{}}}", json_string(msg));
    let response = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: {retry_after_s}\r\nConnection: close\r\n\r\n{body}",
        reason(code),
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_path_and_params() {
        let t = parse_request_line("GET /topk?node=1&k=5 HTTP/1.1").unwrap();
        assert_eq!(t.path, "/topk");
        assert_eq!(t.require("node").unwrap(), "1");
        assert_eq!(t.get("k"), Some("5"));
        assert_eq!(t.get("absent"), None);
        assert_eq!(t.require("absent").unwrap_err().0, 400);
    }

    #[test]
    fn rejects_non_get() {
        assert_eq!(parse_request_line("POST /health HTTP/1.1").unwrap_err().0, 400);
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("1%2C3").unwrap(), "1,3");
        assert_eq!(percent_decode("a+b%20c").unwrap(), "a b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%2").unwrap_err().contains("truncated"));
        assert!(percent_decode("%zz").unwrap_err().contains("invalid"));
        assert!(percent_decode("%ff").unwrap_err().contains("UTF-8"));
    }

    #[test]
    fn encoded_query_decodes_in_place() {
        let t = parse_request_line("GET /query?nodes=1%2C3 HTTP/1.1").unwrap();
        assert_eq!(t.get("nodes"), Some("1,3"));
    }

    #[test]
    fn duplicate_parameters_rejected() {
        let err = parse_query("a=1&a=2").unwrap_err();
        assert_eq!(err.0, 400);
        assert!(err.1.contains("duplicate parameter"), "{}", err.1);
        // Distinct keys are fine; pairs without `=` are skipped.
        assert_eq!(
            parse_query("a=1&novalue&b=2").unwrap(),
            vec![("a".into(), "1".into()), ("b".into(), "2".into())]
        );
        assert_eq!(parse_query("").unwrap(), Vec::<(String, String)>::new());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("tab\there"), "\"tab\\u0009here\"");
    }

    #[test]
    fn responses_have_content_length() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "{\"x\":1}").unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 7\r\n"));
        assert!(s.ends_with("{\"x\":1}"));
        let mut buf = Vec::new();
        write_error(&mut buf, 503, "queue full").unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(s.contains("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn body_reading_honours_content_length() {
        let raw =
            b"POST /edges HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"op\":\"i\"}\ntrailing junk";
        let req = read_request_with_body(&raw[..]).unwrap();
        assert_eq!(req.line, "POST /edges HTTP/1.1\r\n");
        assert_eq!(req.body, "{\"op\":\"i\"}\n");
        let raw = b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request_with_body(&raw[..]).unwrap();
        assert_eq!(req.line, "GET /health HTTP/1.1\r\n");
        assert_eq!(req.body, "");
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let raw = format!("POST /edges HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(read_request_with_body(raw.as_bytes()).is_err());
    }

    #[test]
    fn method_aware_parsing_admits_post_for_listed_methods() {
        let (m, t) = parse_request_line_methods("POST /edges HTTP/1.1", &["GET", "POST"]).unwrap();
        assert_eq!(m, "POST");
        assert_eq!(t.path, "/edges");
        let (m, t) = parse_request_line_methods("GET /health HTTP/1.1", &["GET", "POST"]).unwrap();
        assert_eq!(m, "GET");
        assert_eq!(t.path, "/health");
        assert_eq!(
            parse_request_line_methods("PUT /edges HTTP/1.1", &["GET", "POST"]).unwrap_err().0,
            400
        );
    }

    #[test]
    fn shed_responses_carry_retry_after() {
        let mut buf = Vec::new();
        write_error_retry_after(&mut buf, 503, "admission queue full", 3).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{s}");
        assert!(s.contains("Retry-After: 3\r\n"), "{s}");
        assert!(s.contains("Content-Length: 32\r\n"), "{s}");
        assert!(s.ends_with("{\"error\":\"admission queue full\"}"), "{s}");
    }
}
