//! The micro-batcher: coalesces concurrently queued single-node column
//! requests into one multi-source `[S]_{*,Q}` evaluation.
//!
//! This is the serving-side payoff of the paper's multi-source identity
//! (`[S]_{*,Q} = [Iₙ]_{*,Q} + c·Z·[U]_{Q,*}ᵀ`): evaluating `|Q|` queries
//! together costs one pass over `Z`, so requests that arrive within a
//! short linger window are answered by a single model evaluation.  Each
//! entry of the batched result is the same independent dot product the
//! unbatched path computes, so coalesced answers are **bitwise equal**
//! to single-source ones.
//!
//! Flow per request: consult the [`ColumnCache`]; on a miss, enqueue the
//! node and block on a reply channel.  A dedicated batcher thread fires
//! when either `max_batch` requests are pending or the oldest has
//! lingered for the configured window, deduplicates the node set, runs
//! one [`CsrPlusModel::query_columns`] call, feeds the cache, and
//! scatters `Arc` columns back to every waiter.

use crate::cache::{Column, ColumnCache};
use crate::metrics::Metrics;
use csrplus_core::CsrPlusModel;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a column request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnError {
    /// The reply did not arrive within the caller's timeout.
    Timeout,
    /// The batcher is shutting down and no longer admits requests.
    ShuttingDown,
    /// The model evaluation itself failed (reported verbatim).
    Failed(String),
}

impl std::fmt::Display for ColumnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnError::Timeout => write!(f, "timed out waiting for column"),
            ColumnError::ShuttingDown => write!(f, "server is shutting down"),
            ColumnError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

struct Waiter {
    node: usize,
    reply: mpsc::Sender<Result<Column, ColumnError>>,
}

struct State {
    pending: Vec<Waiter>,
    /// Fire time of the current linger window (set when the first
    /// request of a batch arrives).
    deadline: Option<Instant>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
    model: Arc<CsrPlusModel>,
    cache: Arc<ColumnCache>,
    metrics: Arc<Metrics>,
    max_batch: usize,
    linger: Duration,
    /// When set, evaluations are restricted to internal rows `lo..hi`:
    /// columns have `hi - lo` entries (what a shard server publishes)
    /// instead of `n`.
    rows: Option<(usize, usize)>,
}

/// The batcher: owns the background evaluation thread.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the batcher thread.  `max_batch` caps `|Q|` per
    /// evaluation; `linger` is how long the first request of a batch
    /// waits for company before the batch fires anyway.
    pub fn new(
        model: Arc<CsrPlusModel>,
        cache: Arc<ColumnCache>,
        metrics: Arc<Metrics>,
        max_batch: usize,
        linger: Duration,
    ) -> Self {
        Self::for_rows(model, cache, metrics, max_batch, linger, None)
    }

    /// [`Batcher::new`] restricted to internal rows `lo..hi` — the
    /// per-shard engine of the scatter-gather server.  `None` serves the
    /// full `0..n` range and is exactly [`Batcher::new`].
    pub fn for_rows(
        model: Arc<CsrPlusModel>,
        cache: Arc<ColumnCache>,
        metrics: Arc<Metrics>,
        max_batch: usize,
        linger: Duration,
        rows: Option<(usize, usize)>,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { pending: Vec::new(), deadline: None, shutdown: false }),
            wake: Condvar::new(),
            model,
            cache,
            metrics,
            max_batch: max_batch.max(1),
            linger,
            rows,
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("csrplus-batcher".to_string())
                .spawn(move || batcher_loop(&shared))
                .expect("failed to spawn batcher thread")
        };
        Batcher { shared, worker: Some(worker) }
    }

    /// The similarity column `[S]_{*,node}`, from cache or a (possibly
    /// coalesced) model evaluation.  Blocks up to `timeout`.
    pub fn column(&self, node: usize, timeout: Duration) -> Result<Column, ColumnError> {
        if let Some(col) = self.shared.cache.get(node) {
            return Ok(col);
        }
        // Validate before enqueueing: one bad node must not poison a
        // whole coalesced batch.  Same error text as the direct path.
        if node >= self.shared.model.n() {
            let e =
                csrplus_core::CoSimRankError::QueryOutOfBounds { node, n: self.shared.model.n() };
            return Err(ColumnError::Failed(e.to_string()));
        }
        let (reply, receiver) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("batcher state poisoned");
            if state.shutdown {
                return Err(ColumnError::ShuttingDown);
            }
            if state.pending.is_empty() {
                state.deadline = Some(Instant::now() + self.shared.linger);
            }
            state.pending.push(Waiter { node, reply });
        }
        self.shared.wake.notify_one();
        match receiver.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ColumnError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ColumnError::ShuttingDown),
        }
    }

    /// Stops admitting requests, answers everything already pending, and
    /// joins the batcher thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.state.lock().expect("batcher state poisoned").shutdown = true;
        self.shared.wake.notify_all();
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn batcher_loop(shared: &Shared) {
    // Worker-owned evaluation scratch: the n×|batch| similarity block is
    // written into this buffer batch after batch, so steady-state serving
    // allocates only the per-query output columns it hands to waiters.
    let mut scratch = csrplus_core::DenseMatrix::zeros(0, 0);
    let mut state = shared.state.lock().expect("batcher state poisoned");
    loop {
        if state.pending.is_empty() {
            if state.shutdown {
                return;
            }
            state = shared.wake.wait(state).expect("batcher state poisoned");
            continue;
        }
        let now = Instant::now();
        let due = state.deadline.is_some_and(|d| d <= now);
        if state.pending.len() >= shared.max_batch || due || state.shutdown {
            let take = state.pending.len().min(shared.max_batch);
            let batch: Vec<Waiter> = state.pending.drain(..take).collect();
            // Anything left over starts a fresh linger window now.
            state.deadline =
                if state.pending.is_empty() { None } else { Some(now + shared.linger) };
            drop(state);
            evaluate(shared, batch, &mut scratch);
            state = shared.state.lock().expect("batcher state poisoned");
        } else {
            let wait = state.deadline.expect("pending implies deadline") - now;
            state = shared.wake.wait_timeout(state, wait).expect("batcher state poisoned").0;
        }
    }
}

/// Runs one deduplicated multi-source evaluation (through the worker's
/// reusable `scratch` block) and scatters the columns back to every
/// waiter in the batch.
fn evaluate(shared: &Shared, batch: Vec<Waiter>, scratch: &mut csrplus_core::DenseMatrix) {
    let mut nodes: Vec<usize> = Vec::with_capacity(batch.len());
    let mut slot: Vec<usize> = Vec::with_capacity(batch.len());
    for waiter in &batch {
        match nodes.iter().position(|&n| n == waiter.node) {
            Some(i) => slot.push(i),
            None => {
                slot.push(nodes.len());
                nodes.push(waiter.node);
            }
        }
    }
    shared.metrics.batched_requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
    let columns = match shared.rows {
        // A shard evaluates (and caches) only its own row slice; each
        // partial entry is the same dot product the full path computes,
        // so slices concatenate bitwise into the single-process column.
        Some((lo, hi)) => shared.model.query_columns_range_into(&nodes, lo, hi, scratch),
        None => shared.model.query_columns_into(&nodes, scratch),
    };
    match columns {
        Ok(columns) => {
            shared.metrics.model_evaluations.fetch_add(1, Ordering::Relaxed);
            shared.metrics.batch_sizes.observe(nodes.len() as u64);
            let columns: Vec<Column> =
                columns.into_iter().map(|c| Column::from(c.into_boxed_slice())).collect();
            for (&node, column) in nodes.iter().zip(&columns) {
                shared.cache.insert(node, Arc::clone(column));
            }
            for (waiter, &i) in batch.iter().zip(&slot) {
                // A send fails only if the requester already timed out.
                let _ = waiter.reply.send(Ok(Arc::clone(&columns[i])));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for waiter in batch {
                let _ = waiter.reply.send(Err(ColumnError::Failed(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csrplus_core::CsrPlusConfig;
    use csrplus_graph::{generators::figure1_graph, TransitionMatrix};

    fn model() -> Arc<CsrPlusModel> {
        let t = TransitionMatrix::from_graph(&figure1_graph());
        Arc::new(CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3)).unwrap())
    }

    fn batcher(
        max_batch: usize,
        linger: Duration,
        cache_capacity: usize,
    ) -> (Batcher, Arc<Metrics>, Arc<CsrPlusModel>) {
        let metrics = Arc::new(Metrics::new());
        let m = model();
        let cache = Arc::new(ColumnCache::new(cache_capacity, 2, Arc::clone(&metrics)));
        (Batcher::new(Arc::clone(&m), cache, Arc::clone(&metrics), max_batch, linger), metrics, m)
    }

    const TIMEOUT: Duration = Duration::from_secs(10);

    #[test]
    fn single_request_matches_single_source() {
        let (b, metrics, m) = batcher(4, Duration::from_micros(100), 0);
        let col = b.column(1, TIMEOUT).unwrap();
        let expected = m.single_source(1).unwrap();
        assert_eq!(&col[..], &expected[..], "batched column must be bitwise equal");
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_requests_coalesce_into_one_evaluation() {
        // Long linger + max_batch = K: the batch fires exactly when the
        // K-th request arrives, so the count is deterministic.
        const K: usize = 4;
        let (b, metrics, m) = batcher(K, Duration::from_secs(30), 0);
        let b = Arc::new(b);
        let handles: Vec<_> = (0..K)
            .map(|node| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.column(node, TIMEOUT).unwrap())
            })
            .collect();
        let columns: Vec<Column> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1, "one coalesced pass");
        assert_eq!(metrics.batched_requests.load(Ordering::Relaxed), K as u64);
        assert_eq!(metrics.batch_sizes.count(), 1);
        assert_eq!(metrics.batch_sizes.sum(), K as u64);
        for (node, col) in columns.iter().enumerate() {
            let expected = m.single_source(node).unwrap();
            assert_eq!(&col[..], &expected[..], "node {node} column must be bitwise equal");
        }
    }

    #[test]
    fn duplicate_nodes_deduplicate_within_a_batch() {
        let (b, metrics, _m) = batcher(3, Duration::from_secs(30), 0);
        let b = Arc::new(b);
        let handles: Vec<_> = [2usize, 2, 2]
            .into_iter()
            .map(|node| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.column(node, TIMEOUT).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1);
        // Three requests, one deduplicated query node.
        assert_eq!(metrics.batched_requests.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.batch_sizes.sum(), 1);
    }

    #[test]
    fn cache_hit_skips_the_batcher() {
        let (b, metrics, _m) = batcher(4, Duration::from_micros(100), 8);
        b.column(1, TIMEOUT).unwrap();
        b.column(1, TIMEOUT).unwrap();
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn out_of_bounds_node_fails_fast() {
        let (b, _metrics, _m) = batcher(4, Duration::from_micros(100), 0);
        match b.column(99, TIMEOUT) {
            Err(ColumnError::Failed(msg)) => assert!(msg.contains("99"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn linger_deadline_fires_partial_batches() {
        // max_batch 64 never fills; the 5 ms linger must fire the batch.
        let (b, metrics, _m) = batcher(64, Duration::from_millis(5), 0);
        let col = b.column(3, TIMEOUT).unwrap();
        assert_eq!(col.len(), 6);
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let (b, _metrics, _m) = batcher(4, Duration::from_micros(100), 0);
        b.begin_shutdown();
        assert_eq!(b.column(1, TIMEOUT).unwrap_err(), ColumnError::ShuttingDown);
    }
}
