//! The micro-batcher: coalesces concurrently queued single-node column
//! requests into one multi-source `[S]_{*,Q}` evaluation.
//!
//! This is the serving-side payoff of the paper's multi-source identity
//! (`[S]_{*,Q} = [Iₙ]_{*,Q} + c·Z·[U]_{Q,*}ᵀ`): evaluating `|Q|` queries
//! together costs one pass over `Z`, so requests that arrive within a
//! short linger window are answered by a single model evaluation.  Each
//! entry of the batched result is the same independent dot product the
//! unbatched path computes, so coalesced answers are **bitwise equal**
//! to single-source ones.
//!
//! Flow per request: consult the [`ColumnCache`]; on a miss, enqueue the
//! node and block on a reply channel.  A dedicated batcher thread fires
//! when either `max_batch` requests are pending or the oldest has
//! lingered for the configured window, deduplicates the node set, runs
//! one [`CsrPlusModel::query_columns`] call, feeds the cache, and
//! scatters `Arc` columns back to every waiter.
//!
//! The batcher holds a [`SnapshotHandle`], not a model: every waiter
//! carries the [`Snapshot`] its request loaded, batches are grouped by
//! `(epoch, rank)`, and each group is evaluated against its own
//! snapshot's model — so even requests coalesced across an epoch swap
//! are each answered by exactly the model version they loaded.

use crate::cache::{Column, ColumnCache};
use crate::gauge::LoadGauge;
use crate::metrics::Metrics;
use crate::snapshot::{Snapshot, SnapshotHandle};
use csrplus_core::CsrPlusModel;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a column request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnError {
    /// The reply did not arrive within the caller's timeout.
    Timeout,
    /// The batcher is shutting down and no longer admits requests.
    ShuttingDown,
    /// The model evaluation itself failed (reported verbatim).
    Failed(String),
}

impl std::fmt::Display for ColumnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnError::Timeout => write!(f, "timed out waiting for column"),
            ColumnError::ShuttingDown => write!(f, "server is shutting down"),
            ColumnError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

struct Waiter {
    node: usize,
    /// `Some(t)`: evaluate at truncated rank `t` (pressure-degraded
    /// request); `None`: the full-rank path.
    rank: Option<usize>,
    /// The snapshot the request loaded — the model this waiter must be
    /// answered against, whatever gets published meanwhile.
    snapshot: Arc<Snapshot>,
    reply: mpsc::Sender<Result<Column, ColumnError>>,
}

struct State {
    pending: Vec<Waiter>,
    /// Fire time of the current linger window (set when the first
    /// request of a batch arrives).
    deadline: Option<Instant>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
    handle: Arc<SnapshotHandle>,
    cache: Arc<ColumnCache>,
    metrics: Arc<Metrics>,
    max_batch: usize,
    linger: Duration,
    /// When set, evaluations are restricted to internal rows `lo..hi`:
    /// columns have `hi - lo` entries (what a shard server publishes)
    /// instead of `n`.
    rows: Option<(usize, usize)>,
    /// Queue-depth gauge for the adaptive linger (None in fixed mode).
    gauge: Option<Arc<LoadGauge>>,
    /// Load-aware linger: stretch toward `linger` as the queue fills,
    /// collapse to zero when it is empty.
    adaptive: bool,
}

/// The load-aware linger window: an idle server answers immediately
/// (zero linger — batching has nobody to wait for), and as queue depth
/// rises toward capacity the window stretches linearly up to
/// `linger_max`, amortising more work per evaluation exactly when
/// amortisation pays.
pub fn adaptive_linger(linger_max: Duration, depth: usize, capacity: usize) -> Duration {
    if depth == 0 {
        return Duration::ZERO;
    }
    let fraction = (depth as f64 / capacity.max(1) as f64).clamp(0.0, 1.0);
    linger_max.mul_f64(fraction)
}

impl Shared {
    /// The linger for the window opening now: fixed, or load-aware when
    /// the adaptive policy is on and a gauge is wired.
    fn effective_linger(&self) -> Duration {
        match (&self.gauge, self.adaptive) {
            (Some(gauge), true) => adaptive_linger(self.linger, gauge.depth(), gauge.capacity()),
            _ => self.linger,
        }
    }
}

/// The batcher: owns the background evaluation thread.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the batcher thread.  `max_batch` caps `|Q|` per
    /// evaluation; `linger` is how long the first request of a batch
    /// waits for company before the batch fires anyway.
    pub fn new(
        handle: Arc<SnapshotHandle>,
        cache: Arc<ColumnCache>,
        metrics: Arc<Metrics>,
        max_batch: usize,
        linger: Duration,
    ) -> Self {
        Self::for_rows(handle, cache, metrics, max_batch, linger, None)
    }

    /// [`Batcher::new`] restricted to internal rows `lo..hi` — the
    /// per-shard engine of the scatter-gather server.  `None` serves the
    /// full `0..n` range and is exactly [`Batcher::new`].
    pub fn for_rows(
        handle: Arc<SnapshotHandle>,
        cache: Arc<ColumnCache>,
        metrics: Arc<Metrics>,
        max_batch: usize,
        linger: Duration,
        rows: Option<(usize, usize)>,
    ) -> Self {
        Self::with_policies(handle, cache, metrics, max_batch, linger, rows, None, false)
    }

    /// [`Batcher::for_rows`] with the adaptive serving policies: when
    /// `adaptive` is set (and a `gauge` is supplied) the linger window is
    /// [`adaptive_linger`] of the current queue depth instead of the
    /// fixed `linger`.
    #[allow(clippy::too_many_arguments)] // internal assembly seam, called once
    pub fn with_policies(
        handle: Arc<SnapshotHandle>,
        cache: Arc<ColumnCache>,
        metrics: Arc<Metrics>,
        max_batch: usize,
        linger: Duration,
        rows: Option<(usize, usize)>,
        gauge: Option<Arc<LoadGauge>>,
        adaptive: bool,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { pending: Vec::new(), deadline: None, shutdown: false }),
            wake: Condvar::new(),
            handle,
            cache,
            metrics,
            max_batch: max_batch.max(1),
            linger,
            rows,
            gauge,
            adaptive,
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("csrplus-batcher".to_string())
                .spawn(move || batcher_loop(&shared))
                .expect("failed to spawn batcher thread")
        };
        Batcher { shared, worker: Some(worker) }
    }

    /// The similarity column `[S]_{*,node}`, from cache or a (possibly
    /// coalesced) model evaluation.  Blocks up to `timeout`.
    pub fn column(&self, node: usize, timeout: Duration) -> Result<Column, ColumnError> {
        self.column_rank(node, None, timeout)
    }

    /// [`Batcher::column`] at an optional truncated rank.  `Some(t)`
    /// evaluates only the leading `t` factor columns — the
    /// pressure-degraded path — and deliberately bypasses the cache in
    /// both directions: a truncated column must never be served to (or
    /// pollute) full-rank requests.  A rank at or above the model's is
    /// normalised back to the full-rank path, so over-asking degrades
    /// nothing.
    pub fn column_rank(
        &self,
        node: usize,
        rank: Option<usize>,
        timeout: Duration,
    ) -> Result<Column, ColumnError> {
        self.column_rank_at(self.shared.handle.load(), node, rank, timeout)
    }

    /// [`Batcher::column_rank`] against an explicit, already-loaded
    /// snapshot — the request-scoped entry point: the server loads the
    /// handle once per request and passes the same snapshot here and to
    /// the renderer, so the whole response belongs to one epoch.
    pub fn column_rank_at(
        &self,
        snapshot: Arc<Snapshot>,
        node: usize,
        rank: Option<usize>,
        timeout: Duration,
    ) -> Result<Column, ColumnError> {
        let model = snapshot.model();
        let rank = rank.filter(|&t| t < model.rank());
        if rank.is_none() {
            if let Some(col) = self.shared.cache.get(node, snapshot.epoch()) {
                return Ok(col);
            }
        }
        // Validate before enqueueing: one bad node must not poison a
        // whole coalesced batch.  Same error text as the direct path.
        if node >= model.n() {
            let e = csrplus_core::CoSimRankError::QueryOutOfBounds { node, n: model.n() };
            return Err(ColumnError::Failed(e.to_string()));
        }
        let (reply, receiver) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("batcher state poisoned");
            if state.shutdown {
                return Err(ColumnError::ShuttingDown);
            }
            if state.pending.is_empty() {
                state.deadline = Some(Instant::now() + self.shared.effective_linger());
            }
            state.pending.push(Waiter { node, rank, snapshot, reply });
        }
        self.shared.wake.notify_one();
        match receiver.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ColumnError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ColumnError::ShuttingDown),
        }
    }

    /// Stops admitting requests, answers everything already pending, and
    /// joins the batcher thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.state.lock().expect("batcher state poisoned").shutdown = true;
        self.shared.wake.notify_all();
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn batcher_loop(shared: &Shared) {
    // Worker-owned evaluation scratch: the n×|batch| similarity block is
    // written into this buffer batch after batch, so steady-state serving
    // allocates only the per-query output columns it hands to waiters.
    let mut scratch = csrplus_core::DenseMatrix::zeros(0, 0);
    let mut state = shared.state.lock().expect("batcher state poisoned");
    loop {
        if state.pending.is_empty() {
            if state.shutdown {
                return;
            }
            state = shared.wake.wait(state).expect("batcher state poisoned");
            continue;
        }
        let now = Instant::now();
        let due = state.deadline.is_some_and(|d| d <= now);
        if state.pending.len() >= shared.max_batch || due || state.shutdown {
            let take = state.pending.len().min(shared.max_batch);
            let batch: Vec<Waiter> = state.pending.drain(..take).collect();
            // Anything left over starts a fresh linger window now.
            state.deadline =
                if state.pending.is_empty() { None } else { Some(now + shared.effective_linger()) };
            drop(state);
            evaluate(shared, batch, &mut scratch);
            state = shared.state.lock().expect("batcher state poisoned");
        } else {
            let wait = state.deadline.expect("pending implies deadline") - now;
            state = shared.wake.wait_timeout(state, wait).expect("batcher state poisoned").0;
        }
    }
}

/// Splits the batch into `(epoch, rank)` groups — full-rank waiters and
/// each distinct truncated rank, per snapshot epoch — and runs one
/// deduplicated multi-source evaluation per group against that group's
/// own snapshot.  Almost every batch is a single full-rank group on the
/// current epoch, which takes exactly the pre-policy path; requests
/// coalesced across an epoch swap split into one group per model
/// version, so nobody is answered by a model they did not load.
fn evaluate(shared: &Shared, batch: Vec<Waiter>, scratch: &mut csrplus_core::DenseMatrix) {
    /// One `(epoch, truncated-rank)` evaluation group key.
    type GroupKey = (u64, Option<usize>);
    let mut groups: Vec<(GroupKey, Vec<Waiter>)> = Vec::new();
    for waiter in batch {
        let key = (waiter.snapshot.epoch(), waiter.rank);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(waiter),
            None => groups.push((key, vec![waiter])),
        }
    }
    for ((_, rank), group) in groups {
        evaluate_group(shared, rank, group, scratch);
    }
}

/// Runs one deduplicated multi-source evaluation (through the worker's
/// reusable `scratch` block) and scatters the columns back to every
/// waiter in the group.  `rank: Some(t)` evaluates the truncated-rank
/// product and skips the cache (truncated columns are never cached).
/// All waiters share one snapshot (the grouping key includes the
/// epoch), so the first waiter's model is the group's model.
fn evaluate_group(
    shared: &Shared,
    rank: Option<usize>,
    batch: Vec<Waiter>,
    scratch: &mut csrplus_core::DenseMatrix,
) {
    let snapshot = Arc::clone(&batch[0].snapshot);
    let model: &CsrPlusModel = snapshot.model();
    let mut nodes: Vec<usize> = Vec::with_capacity(batch.len());
    let mut slot: Vec<usize> = Vec::with_capacity(batch.len());
    for waiter in &batch {
        match nodes.iter().position(|&n| n == waiter.node) {
            Some(i) => slot.push(i),
            None => {
                slot.push(nodes.len());
                nodes.push(waiter.node);
            }
        }
    }
    shared.metrics.batched_requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
    let eval_rank = rank.unwrap_or_else(|| model.rank());
    let columns = match shared.rows {
        // A shard evaluates (and caches) only its own row slice; each
        // partial entry is the same dot product the full path computes,
        // so slices concatenate bitwise into the single-process column.
        Some((lo, hi)) => model.query_columns_range_rank_into(&nodes, lo, hi, eval_rank, scratch),
        None => model.query_columns_rank_into(&nodes, eval_rank, scratch),
    };
    match columns {
        Ok(columns) => {
            shared.metrics.model_evaluations.fetch_add(1, Ordering::Relaxed);
            shared.metrics.batch_sizes.observe(nodes.len() as u64);
            if let Some(t) = rank {
                shared.metrics.degraded_requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
                shared.metrics.served_rank.observe(t.max(1) as u64);
            }
            let columns: Vec<Column> =
                columns.into_iter().map(|c| Column::from(c.into_boxed_slice())).collect();
            if rank.is_none() {
                for (&node, column) in nodes.iter().zip(&columns) {
                    shared.cache.insert(node, snapshot.epoch(), Arc::clone(column));
                }
            }
            for (waiter, &i) in batch.iter().zip(&slot) {
                // A send fails only if the requester already timed out.
                let _ = waiter.reply.send(Ok(Arc::clone(&columns[i])));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for waiter in batch {
                let _ = waiter.reply.send(Err(ColumnError::Failed(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csrplus_core::CsrPlusConfig;
    use csrplus_graph::{generators::figure1_graph, TransitionMatrix};

    fn model() -> Arc<CsrPlusModel> {
        let t = TransitionMatrix::from_graph(&figure1_graph());
        Arc::new(CsrPlusModel::precompute(&t, &CsrPlusConfig::with_rank(3)).unwrap())
    }

    fn batcher(
        max_batch: usize,
        linger: Duration,
        cache_capacity: usize,
    ) -> (Batcher, Arc<Metrics>, Arc<CsrPlusModel>) {
        let metrics = Arc::new(Metrics::new());
        let m = model();
        let handle = Arc::new(SnapshotHandle::new(Arc::clone(&m)));
        let cache = Arc::new(ColumnCache::new(cache_capacity, 2, Arc::clone(&metrics)));
        (Batcher::new(handle, cache, Arc::clone(&metrics), max_batch, linger), metrics, m)
    }

    const TIMEOUT: Duration = Duration::from_secs(10);

    #[test]
    fn single_request_matches_single_source() {
        let (b, metrics, m) = batcher(4, Duration::from_micros(100), 0);
        let col = b.column(1, TIMEOUT).unwrap();
        let expected = m.single_source(1).unwrap();
        assert_eq!(&col[..], &expected[..], "batched column must be bitwise equal");
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_requests_coalesce_into_one_evaluation() {
        // Long linger + max_batch = K: the batch fires exactly when the
        // K-th request arrives, so the count is deterministic.
        const K: usize = 4;
        let (b, metrics, m) = batcher(K, Duration::from_secs(30), 0);
        let b = Arc::new(b);
        let handles: Vec<_> = (0..K)
            .map(|node| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.column(node, TIMEOUT).unwrap())
            })
            .collect();
        let columns: Vec<Column> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1, "one coalesced pass");
        assert_eq!(metrics.batched_requests.load(Ordering::Relaxed), K as u64);
        assert_eq!(metrics.batch_sizes.count(), 1);
        assert_eq!(metrics.batch_sizes.sum(), K as u64);
        for (node, col) in columns.iter().enumerate() {
            let expected = m.single_source(node).unwrap();
            assert_eq!(&col[..], &expected[..], "node {node} column must be bitwise equal");
        }
    }

    #[test]
    fn duplicate_nodes_deduplicate_within_a_batch() {
        let (b, metrics, _m) = batcher(3, Duration::from_secs(30), 0);
        let b = Arc::new(b);
        let handles: Vec<_> = [2usize, 2, 2]
            .into_iter()
            .map(|node| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.column(node, TIMEOUT).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1);
        // Three requests, one deduplicated query node.
        assert_eq!(metrics.batched_requests.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.batch_sizes.sum(), 1);
    }

    #[test]
    fn cache_hit_skips_the_batcher() {
        let (b, metrics, _m) = batcher(4, Duration::from_micros(100), 8);
        b.column(1, TIMEOUT).unwrap();
        b.column(1, TIMEOUT).unwrap();
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn out_of_bounds_node_fails_fast() {
        let (b, _metrics, _m) = batcher(4, Duration::from_micros(100), 0);
        match b.column(99, TIMEOUT) {
            Err(ColumnError::Failed(msg)) => assert!(msg.contains("99"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn linger_deadline_fires_partial_batches() {
        // max_batch 64 never fills; the 5 ms linger must fire the batch.
        let (b, metrics, _m) = batcher(64, Duration::from_millis(5), 0);
        let col = b.column(3, TIMEOUT).unwrap();
        assert_eq!(col.len(), 6);
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let (b, _metrics, _m) = batcher(4, Duration::from_micros(100), 0);
        b.begin_shutdown();
        assert_eq!(b.column(1, TIMEOUT).unwrap_err(), ColumnError::ShuttingDown);
    }

    #[test]
    fn adaptive_linger_scales_with_queue_pressure() {
        let max = Duration::from_micros(200);
        assert_eq!(adaptive_linger(max, 0, 16), Duration::ZERO, "idle queue answers immediately");
        assert_eq!(adaptive_linger(max, 4, 16), Duration::from_micros(50));
        assert_eq!(adaptive_linger(max, 8, 16), Duration::from_micros(100));
        assert_eq!(adaptive_linger(max, 16, 16), max);
        assert_eq!(adaptive_linger(max, 64, 16), max, "overfull clamps at the cap");
        assert_eq!(adaptive_linger(max, 3, 0), max, "zero capacity treated as 1");
    }

    #[test]
    fn concurrent_submit_storm_answers_every_waiter_correctly() {
        // Hammer the batcher from many threads at once with tiny batches
        // and a tiny cache so batching, eviction, and dedup all churn
        // concurrently; every reply must still be the exact column.
        const THREADS: usize = 16;
        const REQUESTS: usize = 25;
        let metrics = Arc::new(Metrics::new());
        let m = model();
        let handle = Arc::new(SnapshotHandle::new(Arc::clone(&m)));
        let cache = Arc::new(ColumnCache::new(2, 2, Arc::clone(&metrics)));
        let b = Arc::new(Batcher::new(
            handle,
            cache,
            Arc::clone(&metrics),
            3,
            Duration::from_micros(50),
        ));
        let expected: Vec<Vec<f64>> = (0..m.n()).map(|q| m.single_source(q).unwrap()).collect();
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let b = Arc::clone(&b);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for i in 0..REQUESTS {
                        let node = (t * 7 + i * 3) % expected.len();
                        let col = b.column(node, TIMEOUT).unwrap();
                        assert_eq!(&col[..], &expected[node][..], "node {node} column corrupted");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let answered = metrics.cache_hits.load(Ordering::Relaxed)
            + metrics.batched_requests.load(Ordering::Relaxed);
        assert_eq!(answered, (THREADS * REQUESTS) as u64, "every request answered exactly once");
    }

    #[test]
    fn degraded_rank_bypasses_the_cache_both_ways() {
        let (b, metrics, m) = batcher(4, Duration::from_micros(100), 8);
        // Warm the cache with the full-rank column.
        let full = b.column(1, TIMEOUT).unwrap();
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1);
        // A degraded request must not be served the cached full column…
        let truncated = b.column_rank(1, Some(1), TIMEOUT).unwrap();
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 2, "cache read bypassed");
        assert_ne!(&full[..], &truncated[..], "rank-1 column differs from rank-3");
        let mut scratch = csrplus_core::DenseMatrix::zeros(0, 0);
        let expected = m.query_columns_rank_into(&[1], 1, &mut scratch).unwrap();
        assert_eq!(&truncated[..], &expected[0][..], "truncated column bitwise exact");
        assert_eq!(metrics.degraded_requests.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.served_rank.count(), 1);
        // …and must not have displaced or overwritten the cached one.
        let again = b.column(1, TIMEOUT).unwrap();
        assert_eq!(
            metrics.model_evaluations.load(Ordering::Relaxed),
            2,
            "full column still cached"
        );
        assert_eq!(&again[..], &full[..]);
    }

    #[test]
    fn rank_at_or_above_the_models_is_the_full_rank_path() {
        let (b, metrics, _m) = batcher(4, Duration::from_micros(100), 8);
        let full = b.column(2, TIMEOUT).unwrap();
        // Over-asking normalises to None: served from cache, not degraded.
        let over = b.column_rank(2, Some(3), TIMEOUT).unwrap();
        let way_over = b.column_rank(2, Some(usize::MAX), TIMEOUT).unwrap();
        assert_eq!(&over[..], &full[..]);
        assert_eq!(&way_over[..], &full[..]);
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 1, "cache served both");
        assert_eq!(metrics.degraded_requests.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn waiters_coalesced_across_an_epoch_swap_split_into_per_epoch_groups() {
        // Two waiters holding different snapshots land in one linger
        // window; the batcher must answer each against its own model —
        // two groups, two evaluations — even though the node is shared.
        let metrics = Arc::new(Metrics::new());
        let m = model();
        let handle = Arc::new(SnapshotHandle::new(Arc::clone(&m)));
        let old = handle.load();
        handle.publish(Arc::clone(&m));
        let new = handle.load();
        assert_ne!(old.epoch(), new.epoch());
        let cache = Arc::new(ColumnCache::new(8, 2, Arc::clone(&metrics)));
        let b = Arc::new(Batcher::new(
            Arc::clone(&handle),
            cache,
            Arc::clone(&metrics),
            2,
            Duration::from_secs(30),
        ));
        let handles: Vec<_> = [old, new]
            .into_iter()
            .map(|snap| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.column_rank_at(snap, 1, None, TIMEOUT).unwrap())
            })
            .collect();
        let cols: Vec<Column> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 2, "one pass per epoch");
        let expected = m.single_source(1).unwrap();
        for col in cols {
            assert_eq!(&col[..], &expected[..]);
        }
        // Both epochs' columns were cached under their own tags: an
        // epoch-1 read hits without touching the epoch-0 entry.
        assert!(b.shared.cache.get(1, new_epoch(&handle)).is_some());
    }

    fn new_epoch(handle: &SnapshotHandle) -> u64 {
        handle.epoch()
    }

    #[test]
    fn mixed_rank_batches_group_by_rank() {
        // One batch holding full-rank and two distinct truncated ranks:
        // three groups, three evaluations, every waiter answered right.
        let (b, metrics, m) = batcher(6, Duration::from_secs(30), 0);
        let b = Arc::new(b);
        let requests: Vec<(usize, Option<usize>)> =
            vec![(0, None), (1, Some(1)), (2, Some(2)), (3, None), (1, Some(2)), (4, Some(1))];
        let handles: Vec<_> = requests
            .iter()
            .map(|&(node, rank)| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    (node, rank, b.column_rank(node, rank, TIMEOUT).unwrap())
                })
            })
            .collect();
        let mut scratch = csrplus_core::DenseMatrix::zeros(0, 0);
        for h in handles {
            let (node, rank, col) = h.join().unwrap();
            let t = rank.unwrap_or_else(|| m.rank());
            let expected = m.query_columns_rank_into(&[node], t, &mut scratch).unwrap();
            assert_eq!(&col[..], &expected[0][..], "node {node} rank {rank:?}");
        }
        assert_eq!(metrics.model_evaluations.load(Ordering::Relaxed), 3, "one pass per rank group");
        assert_eq!(metrics.degraded_requests.load(Ordering::Relaxed), 4);
    }
}
