//! Epoch-versioned model snapshots — the seam between serving and live
//! graph updates.
//!
//! Every serving layer used to capture an immutable `Arc<CsrPlusModel>`
//! at boot, freezing the graph for the process lifetime.  This module
//! replaces that direct ownership with a [`SnapshotHandle`]: an
//! atomically swappable pointer to the *current* [`Snapshot`] (an
//! `{epoch, model}` pair).  Each request loads the handle **once** and
//! threads the loaded snapshot through batching, evaluation, caching
//! and rendering, so a single response is always internally consistent
//! with exactly one epoch even while the update thread publishes new
//! models concurrently.
//!
//! Readers never block on publishers: [`SnapshotHandle::load`] is a
//! brief read-lock clone of an `Arc` (the serve crate forbids `unsafe`,
//! so this is the std-only equivalent of an atomic pointer swap), and
//! old epochs drain lazily as the last in-flight requests holding their
//! `Arc<Snapshot>` complete — no global cache flush, no stop-the-world.

use csrplus_core::CsrPlusModel;
use std::sync::{Arc, RwLock};

/// One immutable published model version.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    model: Arc<CsrPlusModel>,
}

impl Snapshot {
    /// Wraps `model` as the snapshot for `epoch`.
    pub fn new(epoch: u64, model: Arc<CsrPlusModel>) -> Self {
        Snapshot { epoch, model }
    }

    /// The epoch this model was published under (0 = boot model).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The model itself.
    pub fn model(&self) -> &CsrPlusModel {
        &self.model
    }

    /// The model as a shared handle (for layers that re-`Arc` it).
    pub fn model_arc(&self) -> &Arc<CsrPlusModel> {
        &self.model
    }
}

/// Atomically swappable pointer to the current [`Snapshot`].
///
/// `load()` is cheap and wait-free in practice (an uncontended
/// read-lock around an `Arc` clone); `publish()` bumps the epoch and
/// swaps the pointer.  With ingestion disabled nothing ever publishes,
/// the handle stays at epoch 0, and serving is byte-identical to the
/// pre-snapshot architecture.
#[derive(Debug)]
pub struct SnapshotHandle {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotHandle {
    /// Creates a handle at epoch 0 over the boot model.
    pub fn new(model: Arc<CsrPlusModel>) -> Self {
        SnapshotHandle { current: RwLock::new(Arc::new(Snapshot::new(0, model))) }
    }

    /// Creates a handle at an explicit starting epoch (e.g. resuming
    /// from a checkpointed artifact that recorded its epoch).
    pub fn with_epoch(epoch: u64, model: Arc<CsrPlusModel>) -> Self {
        SnapshotHandle { current: RwLock::new(Arc::new(Snapshot::new(epoch, model))) }
    }

    /// Loads the current snapshot.  Callers hold the returned `Arc`
    /// for the duration of one request so every step sees the same
    /// epoch.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot handle is never poisoned"))
    }

    /// Publishes `model` as the next epoch and returns that epoch.
    pub fn publish(&self, model: Arc<CsrPlusModel>) -> u64 {
        let mut slot = self.current.write().expect("snapshot handle is never poisoned");
        let epoch = slot.epoch() + 1;
        *slot = Arc::new(Snapshot::new(epoch, model));
        epoch
    }

    /// The current epoch without retaining the snapshot.
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("snapshot handle is never poisoned").epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csrplus_core::CsrPlusConfig;
    use csrplus_graph::generators::figure1_graph;
    use csrplus_graph::TransitionMatrix;

    fn model() -> Arc<CsrPlusModel> {
        let t = TransitionMatrix::from_graph(&figure1_graph());
        let cfg = CsrPlusConfig { rank: 6, ..Default::default() };
        Arc::new(CsrPlusModel::precompute(&t, &cfg).unwrap())
    }

    #[test]
    fn boot_handle_is_epoch_zero() {
        let handle = SnapshotHandle::new(model());
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.load().epoch(), 0);
    }

    #[test]
    fn publish_bumps_epoch_and_swaps_model() {
        let handle = SnapshotHandle::new(model());
        let old = handle.load();
        assert_eq!(handle.publish(model()), 1);
        assert_eq!(handle.publish(model()), 2);
        let new = handle.load();
        assert_eq!(new.epoch(), 2);
        // The old snapshot is still alive and still epoch 0: in-flight
        // requests holding it are unaffected by the swap.
        assert_eq!(old.epoch(), 0);
    }

    #[test]
    fn with_epoch_resumes_at_the_given_epoch() {
        let handle = SnapshotHandle::with_epoch(7, model());
        assert_eq!(handle.epoch(), 7);
        assert_eq!(handle.publish(model()), 8);
    }

    #[test]
    fn concurrent_loads_see_monotone_epochs() {
        let handle = Arc::new(SnapshotHandle::new(model()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&handle);
                let s = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !s.load(std::sync::atomic::Ordering::Relaxed) {
                        let e = h.load().epoch();
                        assert!(e >= last, "epoch went backwards: {last} -> {e}");
                        last = e;
                    }
                })
            })
            .collect();
        for _ in 0..32 {
            handle.publish(model());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(handle.epoch(), 32);
    }
}
