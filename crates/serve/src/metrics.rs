//! Serving metrics: lock-free counters, log₂ latency histograms per
//! route, and the batch-size distribution — everything `GET /metrics`
//! reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Routes with dedicated counters/latency series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /health`
    Health,
    /// `GET /metrics`
    Metrics,
    /// `GET /similarity`
    Similarity,
    /// `GET /topk`
    TopK,
    /// `GET /query`
    Query,
    /// `GET /shard/range` (shard servers only)
    ShardRange,
    /// `GET /shard/columns` (shard servers only)
    ShardColumns,
    /// `GET /shard/topk` (shard servers only)
    ShardTopK,
}

impl Route {
    /// All instrumented routes, in render order.
    pub const ALL: [Route; 8] = [
        Route::Health,
        Route::Metrics,
        Route::Similarity,
        Route::TopK,
        Route::Query,
        Route::ShardRange,
        Route::ShardColumns,
        Route::ShardTopK,
    ];

    fn index(self) -> usize {
        match self {
            Route::Health => 0,
            Route::Metrics => 1,
            Route::Similarity => 2,
            Route::TopK => 3,
            Route::Query => 4,
            Route::ShardRange => 5,
            Route::ShardColumns => 6,
            Route::ShardTopK => 7,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Route::Health => "health",
            Route::Metrics => "metrics",
            Route::Similarity => "similarity",
            Route::TopK => "topk",
            Route::Query => "query",
            Route::ShardRange => "shard_range",
            Route::ShardColumns => "shard_columns",
            Route::ShardTopK => "shard_topk",
        }
    }
}

/// Power-of-two bucketed histogram (bucket `i` counts values `v` with
/// `2^(i-1) < v ≤ 2^i`, bucket 0 counts `v ≤ 1`); tracks count and sum
/// for averages.  All atomic — observation never takes a lock.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; Self::BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// 2^31 µs ≈ 36 minutes: far beyond any per-request latency.
    const BUCKETS: usize = 32;

    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; Self::BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn observe(&self, value: u64) {
        let bucket = (64 - value.max(1).leading_zeros() as usize - 1)
            + usize::from(!value.is_power_of_two() && value > 1);
        self.buckets[bucket.min(Self::BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Renders as `{"count":N,"sum":S,"buckets":{"le_2^i":c,…}}`, with
    /// empty buckets omitted for compactness.
    pub fn render_json(&self) -> String {
        let mut buckets: Vec<String> = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push(format!("\"le_{}\":{c}", 1u64 << i));
            }
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":{{{}}}}}",
            self.count(),
            self.sum(),
            buckets.join(",")
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// All counters and histograms of one running server.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests per route (indexed by [`Route`]).
    requests: [AtomicU64; 8],
    /// Per-route latency, microseconds (indexed by [`Route`]).
    latency_us: [Histogram; 8],
    /// 4xx responses (bad parameters, unknown routes, …).
    pub client_errors: AtomicU64,
    /// I/O failures while reading/answering a request.
    pub io_errors: AtomicU64,
    /// Connections shed with `503` because the admission queue was full.
    pub queue_rejections: AtomicU64,
    /// Multi-source model evaluations run by the batcher (each one call
    /// to `query_columns`, however many requests it served).
    pub model_evaluations: AtomicU64,
    /// Column requests answered by the batcher (including coalesced and
    /// deduplicated ones).
    pub batched_requests: AtomicU64,
    /// Distribution of deduplicated batch sizes (|Q| per evaluation).
    pub batch_sizes: Histogram,
    /// Column-cache hits.
    pub cache_hits: AtomicU64,
    /// Column-cache misses.
    pub cache_misses: AtomicU64,
    /// Column-cache evictions.
    pub cache_evictions: AtomicU64,
    /// Model load → ready-to-serve time in microseconds (0 until
    /// recorded).
    pub cold_start_us: AtomicU64,
    /// 1 when the model was memory-mapped from a v2 artifact, 0 when it
    /// was fully deserialised into owned buffers.
    pub model_mapped: AtomicU64,
    /// 1 when the model stores its factors in f32 (mixed-precision
    /// kernels), 0 for full f64 storage.
    pub model_f32: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request on `route`.
    pub fn record_request(&self, route: Route, latency: Duration) {
        self.requests[route.index()].fetch_add(1, Ordering::Relaxed);
        self.latency_us[route.index()].observe_duration(latency);
    }

    /// Records the cold-start cost: how long loading the model took,
    /// whether it booted zero-copy off a mapped artifact, and whether its
    /// factors are stored in f32.
    pub fn record_boot(&self, load_time: Duration, mapped: bool, f32_storage: bool) {
        let us = load_time.as_micros().min(u64::MAX as u128) as u64;
        self.cold_start_us.store(us, Ordering::Relaxed);
        self.model_mapped.store(mapped as u64, Ordering::Relaxed);
        self.model_f32.store(f32_storage as u64, Ordering::Relaxed);
    }

    /// Requests served on `route` so far.
    pub fn requests(&self, route: Route) -> u64 {
        self.requests[route.index()].load(Ordering::Relaxed)
    }

    /// Requests served across all routes.
    pub fn total_requests(&self) -> u64 {
        Route::ALL.iter().map(|&r| self.requests(r)).sum()
    }

    /// The `GET /metrics` body: request counts, cache and batch
    /// statistics, and per-route latency histograms.
    pub fn render_json(&self) -> String {
        let mut routes: Vec<String> = Vec::new();
        for route in Route::ALL {
            routes.push(format!(
                "\"{}\":{{\"requests\":{},\"latency_us\":{}}}",
                route.name(),
                self.requests(route),
                self.latency_us[route.index()].render_json()
            ));
        }
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\"requests_total\":{},",
                "\"routes\":{{{}}},",
                "\"errors\":{{\"client\":{},\"io\":{},\"queue_rejections\":{}}},",
                "\"batcher\":{{\"model_evaluations\":{},\"batched_requests\":{},\"batch_sizes\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}},",
                "\"boot\":{{\"cold_start_us\":{},\"model_mapped\":{},",
                "\"model_precision\":\"{}\"}}}}"
            ),
            self.total_requests(),
            routes.join(","),
            load(&self.client_errors),
            load(&self.io_errors),
            load(&self.queue_rejections),
            load(&self.model_evaluations),
            load(&self.batched_requests),
            self.batch_sizes.render_json(),
            load(&self.cache_hits),
            load(&self.cache_misses),
            load(&self.cache_evictions),
            load(&self.cold_start_us),
            load(&self.model_mapped),
            if load(&self.model_f32) == 1 { "f32" } else { "f64" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_power_of_two_boundaries() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 8, 9, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        let json = h.render_json();
        // 0 and 1 land in le_1; 2 in le_2; 3 and 4 in le_4; 5 and 8 in
        // le_8; 9 in le_16; 1024 in le_1024.
        assert!(json.contains("\"le_1\":2"), "{json}");
        assert!(json.contains("\"le_2\":1"), "{json}");
        assert!(json.contains("\"le_4\":2"), "{json}");
        assert!(json.contains("\"le_8\":2"), "{json}");
        assert!(json.contains("\"le_16\":1"), "{json}");
        assert!(json.contains("\"le_1024\":1"), "{json}");
    }

    #[test]
    fn metrics_render_contains_all_sections() {
        let m = Metrics::new();
        m.record_request(Route::TopK, Duration::from_micros(42));
        m.record_request(Route::Health, Duration::from_micros(1));
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.model_evaluations.fetch_add(1, Ordering::Relaxed);
        m.batch_sizes.observe(4);
        let json = m.render_json();
        assert!(json.contains("\"requests_total\":2"), "{json}");
        assert!(json.contains("\"topk\":{\"requests\":1"), "{json}");
        assert!(json.contains("\"model_evaluations\":1"), "{json}");
        assert!(json.contains("\"hits\":3"), "{json}");
        assert!(json.contains("\"batch_sizes\":{\"count\":1"), "{json}");
        assert_eq!(m.requests(Route::TopK), 1);
        assert_eq!(m.total_requests(), 2);
    }

    #[test]
    fn boot_metrics_render() {
        let m = Metrics::new();
        assert!(m.render_json().contains(
            "\"boot\":{\"cold_start_us\":0,\"model_mapped\":0,\"model_precision\":\"f64\"}"
        ));
        m.record_boot(Duration::from_micros(1234), true, true);
        let json = m.render_json();
        assert!(json.contains("\"cold_start_us\":1234"), "{json}");
        assert!(json.contains("\"model_mapped\":1"), "{json}");
        assert!(json.contains("\"model_precision\":\"f32\""), "{json}");
    }
}
