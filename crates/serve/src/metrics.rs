//! Serving metrics: lock-free counters, log₂ latency histograms per
//! route, and the batch-size distribution — everything `GET /metrics`
//! reports.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Routes with dedicated counters/latency series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /health`
    Health,
    /// `GET /metrics`
    Metrics,
    /// `GET /similarity`
    Similarity,
    /// `GET /topk`
    TopK,
    /// `GET /query`
    Query,
    /// `GET /shard/range` (shard servers only)
    ShardRange,
    /// `GET /shard/columns` (shard servers only)
    ShardColumns,
    /// `GET /shard/topk` (shard servers only)
    ShardTopK,
    /// `POST /edges` (ingestion-enabled servers only)
    Edges,
}

impl Route {
    /// All instrumented routes, in render order.
    pub const ALL: [Route; 9] = [
        Route::Health,
        Route::Metrics,
        Route::Similarity,
        Route::TopK,
        Route::Query,
        Route::ShardRange,
        Route::ShardColumns,
        Route::ShardTopK,
        Route::Edges,
    ];

    fn index(self) -> usize {
        match self {
            Route::Health => 0,
            Route::Metrics => 1,
            Route::Similarity => 2,
            Route::TopK => 3,
            Route::Query => 4,
            Route::ShardRange => 5,
            Route::ShardColumns => 6,
            Route::ShardTopK => 7,
            Route::Edges => 8,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Route::Health => "health",
            Route::Metrics => "metrics",
            Route::Similarity => "similarity",
            Route::TopK => "topk",
            Route::Query => "query",
            Route::ShardRange => "shard_range",
            Route::ShardColumns => "shard_columns",
            Route::ShardTopK => "shard_topk",
            Route::Edges => "edges",
        }
    }
}

/// Power-of-two bucketed histogram (bucket `i` counts values `v` with
/// `2^(i-1) < v ≤ 2^i`, bucket 0 counts `v ≤ 1`); tracks count and sum
/// for averages.  All atomic — observation never takes a lock.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; Self::BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// 2^31 µs ≈ 36 minutes: far beyond any per-request latency.
    const BUCKETS: usize = 32;

    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; Self::BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn observe(&self, value: u64) {
        let bucket = (64 - value.max(1).leading_zeros() as usize - 1)
            + usize::from(!value.is_power_of_two() && value > 1);
        self.buckets[bucket.min(Self::BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q ≤ 1`) estimated from the log₂ buckets:
    /// the bucket holding the target rank is found by cumulative count,
    /// then the value is interpolated linearly between the bucket's
    /// bounds — exact to within one octave, which is what power-of-two
    /// buckets can promise.  Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lower = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                let upper = 1u64 << i;
                let within = (target - seen) as f64 / c as f64;
                return lower + ((upper - lower) as f64 * within).round() as u64;
            }
            seen += c;
        }
        1u64 << (Self::BUCKETS - 1)
    }

    /// Renders as `{"count":N,"sum":S,"p50":…,"p99":…,"p999":…,
    /// "buckets":{"le_2^i":c,…}}`, with empty buckets omitted for
    /// compactness.
    pub fn render_json(&self) -> String {
        let mut buckets: Vec<String> = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push(format!("\"le_{}\":{c}", 1u64 << i));
            }
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"buckets\":{{{}}}}}",
            self.count(),
            self.sum(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
            buckets.join(",")
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// All counters and histograms of one running server.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests per route (indexed by [`Route`]).
    requests: [AtomicU64; 9],
    /// Per-route latency, microseconds (indexed by [`Route`]).
    latency_us: [Histogram; 9],
    /// 4xx responses (bad parameters, unknown routes, …).
    pub client_errors: AtomicU64,
    /// I/O failures while reading/answering a request.
    pub io_errors: AtomicU64,
    /// Connections shed with `503` because the admission queue was full.
    pub queue_rejections: AtomicU64,
    /// Multi-source model evaluations run by the batcher (each one call
    /// to `query_columns`, however many requests it served).
    pub model_evaluations: AtomicU64,
    /// Column requests answered by the batcher (including coalesced and
    /// deduplicated ones).
    pub batched_requests: AtomicU64,
    /// Distribution of deduplicated batch sizes (|Q| per evaluation).
    pub batch_sizes: Histogram,
    /// Column-cache hits.
    pub cache_hits: AtomicU64,
    /// Column-cache misses.
    pub cache_misses: AtomicU64,
    /// Column-cache evictions.
    pub cache_evictions: AtomicU64,
    /// Inserts the TinyLFU admission filter refused.
    pub cache_admission_rejects: AtomicU64,
    /// Connections shed at admission, total (the `shed.total` counter;
    /// tracks `queue_rejections` but lives with the `Retry-After`
    /// advice it is reported next to).
    pub shed_total: AtomicU64,
    /// The `Retry-After` seconds advised on the most recent shed.
    pub shed_last_retry_after_s: AtomicU64,
    /// Requests answered at a truncated rank under pressure.
    pub degraded_requests: AtomicU64,
    /// Distribution of the ranks actually served to degraded requests.
    pub served_rank: Histogram,
    /// Model load → ready-to-serve time in microseconds (0 until
    /// recorded).
    pub cold_start_us: AtomicU64,
    /// 1 when the model was memory-mapped from a v2 artifact, 0 when it
    /// was fully deserialised into owned buffers.
    pub model_mapped: AtomicU64,
    /// 1 when the model stores its factors in f32 (mixed-precision
    /// kernels), 0 for full f64 storage.
    pub model_f32: AtomicU64,
    /// Per-client (peer-address keyed) shed counts — the fairness
    /// ledger behind escalating `Retry-After` advice.
    shed_clients: Mutex<HashMap<String, u64>>,
    /// The currently served model epoch (0 = boot model, ingestion off
    /// or no edits published yet).
    pub ingest_epoch: AtomicU64,
    /// Edge edits applied by the update thread (inserts + deletes that
    /// actually changed the graph).
    pub ingest_updates_applied: AtomicU64,
    /// Model snapshots published by the update thread.
    pub ingest_epochs_published: AtomicU64,
    /// Full re-factorisations (`refresh()`) the update thread ran after
    /// exhausting its incremental-update budget.
    pub ingest_rebuilds: AtomicU64,
    /// Epoch checkpoints written through the store's v2 writer.
    pub ingest_checkpoints: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request on `route`.
    pub fn record_request(&self, route: Route, latency: Duration) {
        self.requests[route.index()].fetch_add(1, Ordering::Relaxed);
        self.latency_us[route.index()].observe_duration(latency);
    }

    /// Records the cold-start cost: how long loading the model took,
    /// whether it booted zero-copy off a mapped artifact, and whether its
    /// factors are stored in f32.
    pub fn record_boot(&self, load_time: Duration, mapped: bool, f32_storage: bool) {
        let us = load_time.as_micros().min(u64::MAX as u128) as u64;
        self.cold_start_us.store(us, Ordering::Relaxed);
        self.model_mapped.store(mapped as u64, Ordering::Relaxed);
        self.model_f32.store(f32_storage as u64, Ordering::Relaxed);
    }

    /// Records one shed against `client` (a peer address) and returns
    /// that client's total shed count, including this one.  The caller
    /// uses the count to escalate `Retry-After` advice for repeat
    /// offenders so one hot client cannot starve the rest.
    pub fn record_shed_for_client(&self, client: &str) -> u64 {
        let mut clients = self.shed_clients.lock().expect("shed ledger poisoned");
        let count = clients.entry(client.to_string()).or_insert(0);
        *count += 1;
        *count
    }

    /// The per-client shed ledger as a JSON object with deterministic
    /// (sorted) key order.
    pub fn shed_clients_json(&self) -> String {
        let clients = self.shed_clients.lock().expect("shed ledger poisoned");
        let mut entries: Vec<(&String, &u64)> = clients.iter().collect();
        entries.sort();
        let body: Vec<String> =
            entries.iter().map(|(k, v)| format!("{}:{v}", crate::http::json_string(k))).collect();
        format!("{{{}}}", body.join(","))
    }

    /// Requests served on `route` so far.
    pub fn requests(&self, route: Route) -> u64 {
        self.requests[route.index()].load(Ordering::Relaxed)
    }

    /// Requests served across all routes.
    pub fn total_requests(&self) -> u64 {
        Route::ALL.iter().map(|&r| self.requests(r)).sum()
    }

    /// The `GET /metrics` body: request counts, cache and batch
    /// statistics, and per-route latency histograms.
    pub fn render_json(&self) -> String {
        let mut routes: Vec<String> = Vec::new();
        for route in Route::ALL {
            routes.push(format!(
                "\"{}\":{{\"requests\":{},\"latency_us\":{}}}",
                route.name(),
                self.requests(route),
                self.latency_us[route.index()].render_json()
            ));
        }
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\"requests_total\":{},",
                "\"routes\":{{{}}},",
                "\"errors\":{{\"client\":{},\"io\":{},\"queue_rejections\":{}}},",
                "\"batcher\":{{\"model_evaluations\":{},\"batched_requests\":{},\"batch_sizes\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"admission_rejects\":{}}},",
                "\"shed\":{{\"total\":{},\"last_retry_after_s\":{}}},",
                "\"shed_clients\":{},",
                "\"degraded\":{{\"requests\":{},\"served_rank\":{}}},",
                "\"ingest\":{{\"epoch\":{},\"updates_applied\":{},\"epochs_published\":{},",
                "\"rebuilds\":{},\"checkpoints\":{}}},",
                "\"boot\":{{\"cold_start_us\":{},\"model_mapped\":{},",
                "\"model_precision\":\"{}\"}}}}"
            ),
            self.total_requests(),
            routes.join(","),
            load(&self.client_errors),
            load(&self.io_errors),
            load(&self.queue_rejections),
            load(&self.model_evaluations),
            load(&self.batched_requests),
            self.batch_sizes.render_json(),
            load(&self.cache_hits),
            load(&self.cache_misses),
            load(&self.cache_evictions),
            load(&self.cache_admission_rejects),
            load(&self.shed_total),
            load(&self.shed_last_retry_after_s),
            self.shed_clients_json(),
            load(&self.degraded_requests),
            self.served_rank.render_json(),
            load(&self.ingest_epoch),
            load(&self.ingest_updates_applied),
            load(&self.ingest_epochs_published),
            load(&self.ingest_rebuilds),
            load(&self.ingest_checkpoints),
            load(&self.cold_start_us),
            load(&self.model_mapped),
            if load(&self.model_f32) == 1 { "f32" } else { "f64" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_power_of_two_boundaries() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 8, 9, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        let json = h.render_json();
        // 0 and 1 land in le_1; 2 in le_2; 3 and 4 in le_4; 5 and 8 in
        // le_8; 9 in le_16; 1024 in le_1024.
        assert!(json.contains("\"le_1\":2"), "{json}");
        assert!(json.contains("\"le_2\":1"), "{json}");
        assert!(json.contains("\"le_4\":2"), "{json}");
        assert!(json.contains("\"le_8\":2"), "{json}");
        assert!(json.contains("\"le_16\":1"), "{json}");
        assert!(json.contains("\"le_1024\":1"), "{json}");
    }

    #[test]
    fn metrics_render_contains_all_sections() {
        let m = Metrics::new();
        m.record_request(Route::TopK, Duration::from_micros(42));
        m.record_request(Route::Health, Duration::from_micros(1));
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.model_evaluations.fetch_add(1, Ordering::Relaxed);
        m.batch_sizes.observe(4);
        let json = m.render_json();
        assert!(json.contains("\"requests_total\":2"), "{json}");
        assert!(json.contains("\"topk\":{\"requests\":1"), "{json}");
        assert!(json.contains("\"model_evaluations\":1"), "{json}");
        assert!(json.contains("\"hits\":3"), "{json}");
        assert!(json.contains("\"batch_sizes\":{\"count\":1"), "{json}");
        assert_eq!(m.requests(Route::TopK), 1);
        assert_eq!(m.total_requests(), 2);
    }

    #[test]
    fn quantiles_land_in_the_observed_octave() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 99 fast observations and 1 slow one: p50 in the fast octave,
        // p999 in the slow one.
        for _ in 0..99 {
            h.observe(100);
        }
        h.observe(10_000);
        let p50 = h.quantile(0.50);
        assert!((64..=128).contains(&p50), "p50 = {p50} not in 100's octave");
        let p999 = h.quantile(0.999);
        assert!((8192..=16384).contains(&p999), "p999 = {p999} not in 10000's octave");
        // Quantiles are monotone in q.
        assert!(h.quantile(0.99) >= p50);
        assert!(p999 >= h.quantile(0.99));
    }

    #[test]
    fn quantile_of_uniform_observations_is_exactly_that_value_bucket() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.observe(1000);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let v = h.quantile(q);
            assert!((512..=1024).contains(&v), "q={q}: {v}");
        }
        let json = h.render_json();
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        assert!(json.contains("\"p999\":"), "{json}");
    }

    #[test]
    fn shed_and_degraded_sections_render() {
        let m = Metrics::new();
        m.shed_total.fetch_add(5, Ordering::Relaxed);
        m.shed_last_retry_after_s.store(2, Ordering::Relaxed);
        m.degraded_requests.fetch_add(3, Ordering::Relaxed);
        m.served_rank.observe(8);
        let json = m.render_json();
        assert!(json.contains("\"shed\":{\"total\":5,\"last_retry_after_s\":2}"), "{json}");
        assert!(
            json.contains("\"degraded\":{\"requests\":3,\"served_rank\":{\"count\":1"),
            "{json}"
        );
        assert!(json.contains("\"admission_rejects\":0"), "{json}");
    }

    #[test]
    fn per_client_shed_ledger_renders_sorted_and_escalates() {
        let m = Metrics::new();
        assert!(m.render_json().contains("\"shed_clients\":{}"), "empty ledger renders as {{}}");
        assert_eq!(m.record_shed_for_client("10.0.0.2"), 1);
        assert_eq!(m.record_shed_for_client("10.0.0.1"), 1);
        assert_eq!(m.record_shed_for_client("10.0.0.2"), 2);
        assert_eq!(m.shed_clients_json(), "{\"10.0.0.1\":1,\"10.0.0.2\":2}");
        assert!(m.render_json().contains("\"shed_clients\":{\"10.0.0.1\":1,\"10.0.0.2\":2}"));
    }

    #[test]
    fn ingest_section_renders() {
        let m = Metrics::new();
        assert!(
            m.render_json().contains(
                "\"ingest\":{\"epoch\":0,\"updates_applied\":0,\"epochs_published\":0,\
                 \"rebuilds\":0,\"checkpoints\":0}"
            ),
            "{}",
            m.render_json()
        );
        m.ingest_epoch.store(3, Ordering::Relaxed);
        m.ingest_updates_applied.fetch_add(17, Ordering::Relaxed);
        m.ingest_epochs_published.fetch_add(3, Ordering::Relaxed);
        let json = m.render_json();
        assert!(json.contains("\"ingest\":{\"epoch\":3,\"updates_applied\":17"), "{json}");
        m.record_request(Route::Edges, Duration::from_micros(10));
        assert!(m.render_json().contains("\"edges\":{\"requests\":1"), "{}", m.render_json());
    }

    #[test]
    fn boot_metrics_render() {
        let m = Metrics::new();
        assert!(m.render_json().contains(
            "\"boot\":{\"cold_start_us\":0,\"model_mapped\":0,\"model_precision\":\"f64\"}"
        ));
        m.record_boot(Duration::from_micros(1234), true, true);
        let json = m.render_json();
        assert!(json.contains("\"cold_start_us\":1234"), "{json}");
        assert!(json.contains("\"model_mapped\":1"), "{json}");
        assert!(json.contains("\"model_precision\":\"f32\""), "{json}");
    }
}
