//! # csrplus-serve
//!
//! A production-shaped query-serving subsystem over precomputed
//! [`csrplus_core::CsrPlusModel`]s — std-only, like the rest of the
//! workspace.
//!
//! The paper's headline capability is *multi-source* amortisation:
//! answering `|Q|` queries costs one `Z·[U]_{Q,*}ᵀ` pass (Eq. 10) instead
//! of `|Q|` independent passes.  A sequential accept loop throws that
//! away at the serving layer; this crate recovers it with four pieces:
//!
//! * [`pool`] — a worker thread pool with a **bounded admission queue**
//!   (overload sheds with `503` instead of queueing unboundedly);
//! * [`batcher`] — a **micro-batcher** that coalesces concurrently queued
//!   single-node requests into one multi-source `[S]_{*,Q}` evaluation
//!   and scatters the columns back to the waiting responders;
//! * [`cache`] — a **sharded LRU column cache** keyed by node id,
//!   consulted before batching;
//! * [`metrics`] — counters, per-route latency histograms and the batch
//!   size distribution, exposed at `GET /metrics`.
//!
//! [`server`] assembles them behind the same routes the original toy
//! server exposed (`/health`, `/similarity`, `/topk`, `/query`), with
//! per-request socket timeouts and graceful, queue-draining shutdown.
//! [`legacy`] preserves that original sequential server for comparison
//! benchmarks and as a `--legacy` escape hatch.
//!
//! For horizontal scale-out the same server runs in two more roles:
//! a **shard** (`ServeConfig::shard_rows`) serving one contiguous slice
//! of internal rows off a shared mmap'd artifact via the [`wire`]
//! protocol (`/shard/topk`, `/shard/columns`, `/shard/range`), and a
//! **coordinator** (`ServeConfig::shards`) that scatters public queries
//! across shards and gathers the partial answers.  The [`coordinator`]
//! keeps per-shard split Cauchy–Schwarz bound summaries so top-k
//! queries contact shards in descending bound order and *skip* shards
//! that cannot beat the current kth score, hedges stragglers, and
//! K-way-merges partial heaps — byte-for-byte identical to the
//! single-process answer at any shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod coordinator;
pub mod gauge;
pub mod http;
pub mod ingest;
pub mod legacy;
pub mod metrics;
pub mod pool;
pub mod render;
pub mod server;
pub mod snapshot;
pub mod tinylfu;
pub mod wire;

pub use coordinator::{Coordinator, ShardSpec};
pub use ingest::{EdgeOp, IngestConfig};
pub use metrics::Metrics;
pub use server::{ServeConfig, Server, ServerHandle};
pub use snapshot::{Snapshot, SnapshotHandle};
