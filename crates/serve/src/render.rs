//! JSON response bodies, shared by the pooled and legacy servers so both
//! paths produce byte-identical output for identical scores.

/// `GET /health` body.
pub fn health(nodes: usize, rank: usize) -> String {
    format!("{{\"status\":\"ok\",\"nodes\":{nodes},\"rank\":{rank}}}")
}

/// `GET /similarity` body.
pub fn similarity(a: usize, b: usize, s: f64) -> String {
    format!("{{\"a\":{a},\"b\":{b},\"similarity\":{s}}}")
}

/// `GET /topk` body.
pub fn topk(node: usize, results: &[(usize, f64)]) -> String {
    let items: Vec<String> =
        results.iter().map(|(i, s)| format!("{{\"node\":{i},\"score\":{s}}}")).collect();
    format!("{{\"node\":{node},\"results\":[{}]}}", items.join(","))
}

/// `GET /query` body: one full similarity column per query node.
pub fn query(nodes: &[usize], columns: &[&[f64]]) -> String {
    debug_assert_eq!(nodes.len(), columns.len());
    let cols: Vec<String> = columns
        .iter()
        .map(|col| {
            let vals: Vec<String> = col.iter().map(|v| format!("{v}")).collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    let q: Vec<String> = nodes.iter().map(|q| q.to_string()).collect();
    format!("{{\"queries\":[{}],\"columns\":[{}]}}", q.join(","), cols.join(","))
}

/// Tags a rendered JSON object body with the epoch it was computed at:
/// `{"a":1}` → `{"a":1,"epoch":3}`.  Ingestion-enabled servers stamp
/// every query response through this so clients can correlate answers
/// with published model versions; with ingestion off nothing calls it
/// and bodies stay byte-identical to the static-model server.
pub fn with_epoch(body: String, epoch: u64) -> String {
    let mut body = body;
    debug_assert!(body.ends_with('}'), "epoch tagging expects a JSON object body");
    body.pop();
    body.push_str(&format!(",\"epoch\":{epoch}}}"));
    body
}

/// Top-`k` over a precomputed similarity column, excluding the query
/// node, sorted by descending score with node id as tie-break — the same
/// order [`csrplus_core::CsrPlusModel::top_k`] produces, so serving from
/// a batched/cached column is indistinguishable from the direct path.
///
/// Selection is one `O(n)` scan with a bounded sorted buffer, not a
/// full sort: the node-id tie-break makes the comparator a strict total
/// order, so the top-`k` set (and its sorted order) is unique and
/// identical to sorting everything.  Once the buffer is full, almost
/// every element fails the single "beats the current worst?" compare,
/// so the scan is branch-predictable and allocation-free — on large
/// columns this took `/topk` from sort-dominated to scan-dominated.
pub fn top_k_from_column(column: &[f64], q: usize, k: usize) -> Vec<(usize, f64)> {
    top_k_from_scored(column.iter().copied().enumerate().filter(|&(i, _)| i != q), k)
}

/// Top-`k` of an arbitrary `(node, score)` stream under the same order
/// as [`top_k_from_column`] — the shard route ranks its slice-local
/// candidates through this, so the coordinator's merge sees identically
/// ranked partial lists.
pub fn top_k_from_scored(
    scored: impl Iterator<Item = (usize, f64)>,
    k: usize,
) -> Vec<(usize, f64)> {
    use std::cmp::Ordering;
    if k == 0 {
        return Vec::new();
    }
    // `Less` = sorts first = better: descending score, node id tie-break.
    let cmp = |a: &(usize, f64), b: &(usize, f64)| {
        b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal).then(a.0.cmp(&b.0))
    };
    // `k` is request-controlled: cap the preallocation, let it grow.
    let mut top: Vec<(usize, f64)> = Vec::with_capacity(k.saturating_add(1).min(4096));
    for cand in scored {
        if top.len() == k && cmp(&cand, top.last().expect("k > 0")) != Ordering::Less {
            continue;
        }
        let at = top.partition_point(|e| cmp(e, &cand) == Ordering::Less);
        top.insert(at, cand);
        top.truncate(k);
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_match_the_legacy_shapes() {
        assert_eq!(health(6, 3), "{\"status\":\"ok\",\"nodes\":6,\"rank\":3}");
        assert_eq!(similarity(1, 3, 0.5), "{\"a\":1,\"b\":3,\"similarity\":0.5}");
        assert_eq!(
            topk(1, &[(3, 0.5), (4, 0.25)]),
            "{\"node\":1,\"results\":[{\"node\":3,\"score\":0.5},{\"node\":4,\"score\":0.25}]}"
        );
        assert_eq!(
            query(&[1, 3], &[&[0.0, 1.0][..], &[0.5, 0.25][..]]),
            "{\"queries\":[1,3],\"columns\":[[0,1],[0.5,0.25]]}"
        );
    }

    #[test]
    fn epoch_tagging_appends_to_the_object() {
        assert_eq!(
            with_epoch(health(6, 3), 0),
            "{\"status\":\"ok\",\"nodes\":6,\"rank\":3,\"epoch\":0}"
        );
        assert_eq!(
            with_epoch(similarity(1, 3, 0.5), 42),
            "{\"a\":1,\"b\":3,\"similarity\":0.5,\"epoch\":42}"
        );
    }

    #[test]
    fn top_k_excludes_query_sorts_and_tie_breaks() {
        let col = [0.5, 9.0, 0.25, 0.5, 0.75];
        let top = top_k_from_column(&col, 1, 3);
        assert_eq!(top, vec![(4, 0.75), (0, 0.5), (3, 0.5)]);
        assert_eq!(top_k_from_column(&col, 1, 0), vec![]);
        assert_eq!(top_k_from_column(&col, 1, 10).len(), 4);
    }
}
