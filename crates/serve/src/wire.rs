//! The shard wire protocol: lossless f64 encoding and a minimal
//! blocking HTTP client, shared by the coordinator and the shard-mode
//! server.
//!
//! Scores cross the wire as **bit-exact hex** (16 lowercase hex digits
//! of `f64::to_bits` per value, concatenated) rather than decimal: the
//! coordinator's merged answers must be byte-identical to a
//! single-process server's, and decimal round-trips are where that
//! guarantee would quietly die.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Encodes a slice of f64 as concatenated 16-digit hex bit patterns.
pub fn encode_f64s(values: &[f64]) -> String {
    let mut out = String::with_capacity(values.len() * 16);
    for &v in values {
        encode_f64_into(v, &mut out);
    }
    out
}

/// Appends one f64 as 16 hex digits.
pub fn encode_f64_into(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "{:016x}", v.to_bits());
}

/// Decodes a string produced by [`encode_f64s`].
pub fn decode_f64s(hex: &str) -> Result<Vec<f64>, String> {
    if !hex.len().is_multiple_of(16) {
        return Err(format!("hex payload length {} is not a multiple of 16", hex.len()));
    }
    hex.as_bytes()
        .chunks(16)
        .map(|c| {
            let s = std::str::from_utf8(c).map_err(|_| "non-ASCII hex payload".to_string())?;
            u64::from_str_radix(s, 16)
                .map(f64::from_bits)
                .map_err(|_| format!("invalid hex value {s:?}"))
        })
        .collect()
}

/// Decodes a single 16-digit hex f64.
pub fn decode_f64(hex: &str) -> Result<f64, String> {
    let values = decode_f64s(hex)?;
    match values.as_slice() {
        &[v] => Ok(v),
        _ => Err(format!("expected one value, got {}", values.len())),
    }
}

/// One blocking `GET` against `addr` (a `host:port` string), honouring
/// `timeout` for connect, the socket reads/writes, and nothing else.
/// Returns `(status, body)`.
pub fn get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve shard address {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("shard address {addr:?} resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| format!("connect to {addr}: {e}"))?;
    let _ = stream.set_nodelay(true); // scatter legs are latency-critical
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    // One write_all of a prebuilt request: `write!` issues one syscall
    // per fragment, and Nagle-free segments would hit the shard split.
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(|e| format!("write to {addr}: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("read from {addr}: {e}"))?;
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    Ok((code, body))
}

/// One blocking `POST` with a body — how clients (and the load
/// generator) feed `POST /edges`.  Same socket discipline as [`get`];
/// returns `(status, body)`.
pub fn post(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve address {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("address {addr:?} resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| format!("connect to {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).map_err(|e| format!("write to {addr}: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("read from {addr}: {e}"))?;
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    Ok((code, body))
}

/// Pulls the integer value of `"key":<digits>` out of a flat JSON body
/// (the coordinator's parsing needs exactly this much JSON and no more).
pub fn json_usize(body: &str, key: &str) -> Result<usize, String> {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat).ok_or_else(|| format!("missing {key:?} in {body:?}"))?;
    let rest = &body[at + pat.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().map_err(|_| format!("bad {key:?} in {body:?}"))
}

/// Pulls every `"<hex>"` string out of the JSON array following
/// `"key":[`.
pub fn json_string_array(body: &str, key: &str) -> Result<Vec<String>, String> {
    let pat = format!("\"{key}\":[");
    let at = body.find(&pat).ok_or_else(|| format!("missing {key:?} in {body:?}"))?;
    let rest = &body[at + pat.len()..];
    let end = rest.find(']').ok_or_else(|| format!("unterminated {key:?} array"))?;
    Ok(rest[..end]
        .split(',')
        .filter_map(|s| s.trim().strip_prefix('"').and_then(|s| s.strip_suffix('"')))
        .map(str::to_string)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip_is_bit_exact() {
        let values =
            [0.0, -0.0, 1.0, -1.5, f64::MIN_POSITIVE, 1e308, f64::INFINITY, 0.1 + 0.2, f64::NAN];
        let decoded = decode_f64s(&encode_f64s(&values)).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(decode_f64(&encode_f64s(&[0.25])).unwrap(), 0.25);
    }

    #[test]
    fn malformed_hex_rejected() {
        assert!(decode_f64s("abc").is_err());
        assert!(decode_f64s("zzzzzzzzzzzzzzzz").is_err());
        assert!(decode_f64("3ff00000000000003ff0000000000000").is_err());
    }

    #[test]
    fn json_scalar_and_array_extraction() {
        let body = "{\"lo\":5,\"hi\":12,\"cols\":[\"aa\",\"bb\"]}";
        assert_eq!(json_usize(body, "lo").unwrap(), 5);
        assert_eq!(json_usize(body, "hi").unwrap(), 12);
        assert_eq!(json_string_array(body, "cols").unwrap(), vec!["aa", "bb"]);
        assert!(json_usize(body, "absent").is_err());
        assert_eq!(json_string_array("{\"cols\":[]}", "cols").unwrap(), Vec::<String>::new());
    }
}
