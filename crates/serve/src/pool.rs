//! A fixed worker pool with a bounded admission queue.
//!
//! Submission is non-blocking: [`WorkerPool::try_submit`] either enqueues
//! the job or hands it straight back when the queue is full, so the
//! accept loop can shed load with a `503` instead of letting an
//! unbounded backlog grow.  Shutdown is graceful — workers drain every
//! job already admitted before exiting.

use crate::gauge::LoadGauge;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work: one accepted connection to serve.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    ready: Condvar,
    capacity: usize,
    /// Mirrors the queue depth for lock-free readers (adaptive linger,
    /// degrade watermark, Retry-After advice).
    gauge: Option<Arc<LoadGauge>>,
}

/// The pool: `workers` threads pulling from one bounded queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue admitting at most
    /// `capacity` waiting jobs (jobs being executed don't count).
    pub fn new(workers: usize, capacity: usize) -> Self {
        Self::with_gauge(workers, capacity, None)
    }

    /// [`WorkerPool::new`] publishing its queue depth through `gauge` on
    /// every submit and dequeue.
    pub fn with_gauge(workers: usize, capacity: usize, gauge: Option<Arc<LoadGauge>>) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), shutdown: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            gauge,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("csrplus-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers: handles }
    }

    /// Admits a job, or returns it if the queue is full or the pool is
    /// shutting down (the caller responds `503`).
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        if queue.shutdown || queue.jobs.len() >= self.shared.capacity {
            return Err(job);
        }
        queue.jobs.push_back(job);
        drop(queue);
        if let Some(gauge) = &self.shared.gauge {
            gauge.incr();
        }
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().expect("pool queue poisoned").jobs.len()
    }

    /// Stops admissions, drains every queued job, and joins the workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.queue.lock().expect("pool queue poisoned").shutdown = true;
        self.shared.ready.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return; // queue drained, shutdown requested
                }
                queue = shared.ready.wait(queue).expect("pool queue poisoned");
            }
        };
        if let Some(gauge) = &shared.gauge {
            gauge.decr();
        }
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            // Queue capacity is 16 but workers drain concurrently; retry
            // rejected submissions to push all 32 through.
            let mut job: Job = Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            loop {
                match pool.try_submit(job) {
                    Ok(()) => break,
                    Err(rejected) => {
                        job = rejected;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let pool = WorkerPool::new(1, 2);
        // Block the single worker so the queue fills.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap_or_else(|_| panic!("first job rejected"));
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Worker is busy: two jobs fit the queue, the third is shed.
        assert!(pool.try_submit(Box::new(|| {})).is_ok());
        assert!(pool.try_submit(Box::new(|| {})).is_ok());
        assert!(pool.try_submit(Box::new(|| {})).is_err(), "queue of 2 must shed the 3rd");
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let pool = WorkerPool::new(1, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(2));
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap_or_else(|_| panic!("admission failed"));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 8, "shutdown must drain the queue");
    }

    #[test]
    fn gauge_mirrors_queue_depth() {
        let gauge = Arc::new(LoadGauge::new(8));
        let pool = WorkerPool::with_gauge(1, 8, Some(Arc::clone(&gauge)));
        // Block the single worker so queued jobs stay queued.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap_or_else(|_| panic!("first job rejected"));
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        for _ in 0..3 {
            pool.try_submit(Box::new(|| {})).unwrap_or_else(|_| panic!("admission failed"));
        }
        assert_eq!(gauge.depth(), 3, "three jobs waiting behind the blocked worker");
        release_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(gauge.depth(), 0, "drained queue reads empty");
    }

    #[test]
    fn rejects_after_shutdown() {
        let pool = WorkerPool::new(1, 8);
        pool.begin_shutdown();
        assert!(pool.try_submit(Box::new(|| {})).is_err());
    }
}
